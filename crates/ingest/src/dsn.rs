//! Specctra DSN subset reader.
//!
//! Maps a printed-circuit-board description onto the routing grid:
//!
//! * `(structure (layer ...))` — signal layers, in declaration order,
//! * `(structure (boundary (rect|path ...)))` — the die bounding box,
//! * `(structure (grid wire P))` — explicit snapping pitch (optional),
//! * `(structure (keepout ... (rect ...)))` — routing obstacles,
//! * `(library (image ...) (padstack ...))` + `(placement ...)` — pads,
//!   resolved to multi-candidate pin groups,
//! * `(network (net NAME (pins REF-PIN ...)))` — the netlist; nets with
//!   fewer than two resolvable pins are skipped (counted in the import
//!   stats), multi-pin nets become multi-terminal nets.
//!
//! Subset rejections (explicit errors, never silent): non-rect keepout
//! and padstack shapes other than `rect`/`circle`, rotations off the
//! 90-degree grid, unknown layer/component/pin references. The
//! `(wiring ...)` section — pre-existing routes — is ignored: the
//! router re-routes from scratch.

use crate::error::{err, ParseError, Pos};
use crate::map::pad_pin;
use crate::sexpr::{parse, Sexpr};
use crate::snap::Snapper;
use crate::{Format, Imported};
use sadp_geom::{DesignRules, Layer, TrackRect};
use sadp_grid::{Netlist, Pin, RoutingPlane};
use std::collections::BTreeMap;

/// A pin offset within an image.
struct PinDef {
    padstack: String,
    dx: f64,
    dy: f64,
}

/// One padstack shape: a rectangle relative to the pad origin, on a
/// named layer (or `signal`/`pcb`, mapped to the first routing layer).
struct Shape {
    layer: String,
    rect: [f64; 4],
    pos: Pos,
}

/// A placed component instance.
struct Place {
    image: String,
    x: f64,
    y: f64,
    back: bool,
    rot: i32,
    pos: Pos,
}

/// Reads a Specctra DSN board into a routing plane and netlist.
///
/// # Errors
///
/// Returns [`ParseError`] with line/column context on any syntax
/// problem or subset violation.
pub fn read_dsn(text: &str) -> Result<Imported, ParseError> {
    let root = parse(text)?;
    if !root.is("pcb") {
        return Err(err(
            root.pos(),
            format!(
                "top-level list must be (pcb ...), got ({})",
                root.tag().unwrap_or("?")
            ),
        ));
    }
    let structure = root
        .child("structure")
        .ok_or_else(|| err(root.pos(), "missing (structure ...)"))?;

    // Signal layers, in declaration order.
    let mut layer_names: Vec<String> = Vec::new();
    for l in structure.children("layer") {
        let name = l.atom_at(1, "layer name")?;
        if !layer_names.iter().any(|n| n == name) {
            layer_names.push(name.to_string());
        }
    }
    if layer_names.is_empty() {
        return Err(err(
            structure.pos(),
            "no (layer ...) declarations in (structure ...)",
        ));
    }
    if layer_names.len() > 16 {
        return Err(err(
            structure.pos(),
            format!(
                "{} layers exceeds the 16-layer import cap",
                layer_names.len()
            ),
        ));
    }
    let layer_of = |name: &str, pos: Pos| -> Result<Layer, ParseError> {
        if name.eq_ignore_ascii_case("pcb")
            || name.eq_ignore_ascii_case("signal")
            || name.eq_ignore_ascii_case("all")
        {
            return Ok(Layer(0));
        }
        layer_names
            .iter()
            .position(|n| n == name)
            .map(|i| Layer(i as u8))
            .ok_or_else(|| err(pos, format!("unknown layer `{name}`")))
    };

    // Boundary bounding box and snapping pitch.
    let boundary = structure
        .child("boundary")
        .ok_or_else(|| err(structure.pos(), "missing (boundary ...)"))?;
    let bbox = boundary_bbox(boundary)?;
    let mut pitch: Option<f64> = None;
    for g in structure.children("grid") {
        if g.atom_at(1, "grid kind")?.eq_ignore_ascii_case("wire") {
            let p = g.num_at(2, "grid wire pitch")?;
            pitch = Some(pitch.map_or(p, |q: f64| q.min(p)));
        }
    }
    let explicit_pitch = pitch.is_some();
    let snap = Snapper::new(bbox, pitch).map_err(|m| err(boundary.pos(), m))?;
    let layers = (layer_names.len().max(2)) as u8;
    let mut plane = RoutingPlane::new(
        layers,
        snap.width(),
        snap.height(),
        DesignRules::node_10nm(),
    )
    .map_err(|e| err(boundary.pos(), e.to_string()))?;

    // Library: images (pin offsets + keepouts) and padstacks (shapes).
    // Per image: named pin definitions plus keepout rects (layer
    // selector, rect, source position).
    type ImageKeepout = (String, [f64; 4], Pos);
    type ImageDef = (Vec<(String, PinDef)>, Vec<ImageKeepout>);
    let mut images: BTreeMap<String, ImageDef> = BTreeMap::new();
    let mut padstacks: BTreeMap<String, Vec<Shape>> = BTreeMap::new();
    if let Some(library) = root.child("library") {
        for image in library.children("image") {
            let name = image.atom_at(1, "image name")?;
            let mut pins = Vec::new();
            for p in image.children("pin") {
                let padstack = p.atom_at(1, "pin padstack")?.to_string();
                // Subset grammar: (pin PADSTACK ID x y). Sub-lists such
                // as (rotate ...) are not supported.
                if p.items().iter().skip(2).any(|i| i.as_atom().is_none()) {
                    return Err(err(
                        p.pos(),
                        "unsupported pin form (subset: `(pin PADSTACK ID x y)`)",
                    ));
                }
                let id = p.atom_at(2, "pin id")?.to_string();
                let dx = p.num_at(3, "pin x offset")?;
                let dy = p.num_at(4, "pin y offset")?;
                pins.push((id, PinDef { padstack, dx, dy }));
            }
            let mut keepouts = Vec::new();
            for ko in image.children("keepout") {
                for (layer, rect, pos) in keepout_rects(ko)? {
                    keepouts.push((layer, rect, pos));
                }
            }
            images.insert(name.to_string(), (pins, keepouts));
        }
        for ps in library.children("padstack") {
            let name = ps.atom_at(1, "padstack name")?;
            let mut shapes = Vec::new();
            for sh in ps.children("shape") {
                let inner = sh
                    .items()
                    .get(1)
                    .ok_or_else(|| err(sh.pos(), "empty (shape ...)"))?;
                shapes.push(shape_rect(inner)?);
            }
            if shapes.is_empty() {
                return Err(err(ps.pos(), format!("padstack `{name}` has no shapes")));
            }
            padstacks.insert(name.to_string(), shapes);
        }
    }

    // Placement: REF -> placed image instance.
    let mut places: BTreeMap<String, Place> = BTreeMap::new();
    if let Some(placement) = root.child("placement") {
        for comp in placement.children("component") {
            let image = comp.atom_at(1, "component image name")?;
            for place in comp.children("place") {
                let refname = place.atom_at(1, "place reference")?;
                let x = place.num_at(2, "place x")?;
                let y = place.num_at(3, "place y")?;
                let back = match place.items().get(4).and_then(Sexpr::as_atom) {
                    None => false,
                    Some(s) if s.eq_ignore_ascii_case("front") => false,
                    Some(s) if s.eq_ignore_ascii_case("back") => true,
                    Some(s) => {
                        return Err(err(
                            place.pos(),
                            format!("unsupported side `{s}` (want front or back)"),
                        ))
                    }
                };
                let rot = match place.items().get(5) {
                    None => 0,
                    Some(_) => {
                        let r = place.num_at(5, "place rotation")?;
                        let r = r.rem_euclid(360.0);
                        if r.fract() != 0.0 || (r as i32) % 90 != 0 {
                            return Err(err(
                                place.pos(),
                                format!("unsupported rotation {r} (subset: 0/90/180/270)"),
                            ));
                        }
                        r as i32
                    }
                };
                if places.contains_key(refname) {
                    return Err(err(
                        place.pos(),
                        format!("component `{refname}` placed twice"),
                    ));
                }
                places.insert(
                    refname.to_string(),
                    Place {
                        image: image.to_string(),
                        x,
                        y,
                        back,
                        rot,
                        pos: place.pos(),
                    },
                );
            }
        }
    }

    // Obstacles: board-level keepouts, then per-image keepouts at their
    // placed positions.
    let mut obstacle_rects = 0usize;
    for ko in structure.children("keepout") {
        for (layer_name, rect, pos) in keepout_rects(ko)? {
            let all_layers = layer_name.eq_ignore_ascii_case("pcb")
                || layer_name.eq_ignore_ascii_case("signal")
                || layer_name.eq_ignore_ascii_case("all");
            let (x0, y0, x1, y1) = snap.rect(rect[0], rect[1], rect[2], rect[3]);
            let track_rect = TrackRect::new(x0, y0, x1, y1);
            if all_layers {
                for l in 0..plane.layers() {
                    plane.add_blockage(Layer(l), track_rect);
                }
            } else {
                plane.add_blockage(layer_of(&layer_name, pos)?, track_rect);
            }
            obstacle_rects += 1;
        }
    }
    for place in places.values() {
        let Some((_, keepouts)) = images.get(&place.image) else {
            return Err(err(
                place.pos,
                format!("component uses unknown image `{}`", place.image),
            ));
        };
        for (layer_name, rect, pos) in keepouts {
            let [ax0, ay0, ax1, ay1] = transform_rect(*rect, place);
            let (x0, y0, x1, y1) = snap.rect(ax0, ay0, ax1, ay1);
            plane.add_blockage(layer_of(layer_name, *pos)?, TrackRect::new(x0, y0, x1, y1));
            obstacle_rects += 1;
        }
    }

    // Network: resolve REF-PIN references through placement + library.
    let network = root
        .child("network")
        .ok_or_else(|| err(root.pos(), "missing (network ...)"))?;
    let mut netlist = Netlist::new();
    let mut skipped_nets = 0usize;
    for net in network.children("net") {
        let name = net.atom_at(1, "net name")?;
        let Some(pins_list) = net.child("pins") else {
            skipped_nets += 1;
            continue;
        };
        let mut pins: Vec<Pin> = Vec::new();
        for item in pins_list.items().iter().skip(1) {
            let refpin = item
                .as_atom()
                .ok_or_else(|| err(item.pos(), "expected a REF-PIN atom in (pins ...)"))?;
            let (refname, pin_id) = refpin.rsplit_once('-').ok_or_else(|| {
                err(
                    item.pos(),
                    format!("bad pin reference `{refpin}` (want REF-PIN)"),
                )
            })?;
            let place = places.get(refname).ok_or_else(|| {
                err(
                    item.pos(),
                    format!("unknown component `{refname}` in net `{name}`"),
                )
            })?;
            let (image_pins, _) = images.get(&place.image).expect("checked above");
            let pin_def = image_pins
                .iter()
                .find(|(id, _)| id == pin_id)
                .map(|(_, d)| d)
                .ok_or_else(|| {
                    err(
                        item.pos(),
                        format!("image `{}` has no pin `{pin_id}`", place.image),
                    )
                })?;
            let shapes = padstacks.get(&pin_def.padstack).ok_or_else(|| {
                err(
                    item.pos(),
                    format!("unknown padstack `{}`", pin_def.padstack),
                )
            })?;
            let mut rects = Vec::new();
            for shape in shapes {
                let [rx0, ry0, rx1, ry1] = shape.rect;
                let world = transform_rect(
                    [
                        rx0 + pin_def.dx,
                        ry0 + pin_def.dy,
                        rx1 + pin_def.dx,
                        ry1 + pin_def.dy,
                    ],
                    place,
                );
                let layer = layer_of(&shape.layer, shape.pos)?;
                let (x0, y0, x1, y1) = snap.rect(world[0], world[1], world[2], world[3]);
                rects.push((layer, (x0, y0, x1, y1)));
            }
            let pin = pad_pin(&plane, &rects).ok_or_else(|| {
                err(
                    item.pos(),
                    format!("pad `{refpin}` snaps onto fully blocked or off-board cells"),
                )
            })?;
            pins.push(pin);
        }
        if pins.len() < 2 {
            skipped_nets += 1;
            continue;
        }
        netlist.add_multi_pin(name, pins);
    }

    let mut notes = vec![format!(
        "{}x{} tracks, {} layers, pitch {} ({})",
        snap.width(),
        snap.height(),
        layers,
        snap.pitch(),
        if explicit_pitch {
            "grid wire"
        } else {
            "derived"
        },
    )];
    if obstacle_rects > 0 {
        notes.push(format!("{obstacle_rects} keepout rects"));
    }
    if skipped_nets > 0 {
        notes.push(format!("skipped {skipped_nets} nets with <2 pins"));
    }
    Ok(Imported {
        plane,
        netlist,
        format: Format::Dsn,
        skipped_nets,
        notes,
    })
}

/// Applies a placed instance's rotation/side to an image-relative rect
/// and translates it to world coordinates. Rotation is counterclockwise
/// about the component origin; `back` mirrors x after the rotation.
fn transform_rect(rect: [f64; 4], place: &Place) -> [f64; 4] {
    let rot = |x: f64, y: f64| -> (f64, f64) {
        let (x, y) = match place.rot {
            0 => (x, y),
            90 => (-y, x),
            180 => (-x, -y),
            270 => (y, -x),
            _ => unreachable!("rotation validated at parse time"),
        };
        if place.back {
            (-x, y)
        } else {
            (x, y)
        }
    };
    let (ax, ay) = rot(rect[0], rect[1]);
    let (bx, by) = rot(rect[2], rect[3]);
    [
        place.x + ax.min(bx),
        place.y + ay.min(by),
        place.x + ax.max(bx),
        place.y + ay.max(by),
    ]
}

/// The `(rect LAYER x0 y0 x1 y1)` shapes of a keepout; every other
/// shape is a subset rejection.
fn keepout_rects(ko: &Sexpr) -> Result<Vec<(String, [f64; 4], Pos)>, ParseError> {
    let mut out = Vec::new();
    for item in ko.items().iter().skip(1) {
        let Some(tag) = item.tag() else {
            continue; // the optional keepout name atom
        };
        if tag.eq_ignore_ascii_case("rect") {
            let layer = item.atom_at(1, "keepout rect layer")?.to_string();
            let r = [
                item.num_at(2, "keepout rect x0")?,
                item.num_at(3, "keepout rect y0")?,
                item.num_at(4, "keepout rect x1")?,
                item.num_at(5, "keepout rect y1")?,
            ];
            out.push((layer, r, item.pos()));
        } else if tag.eq_ignore_ascii_case("sequence_number")
            || tag.eq_ignore_ascii_case("clearance_class")
        {
            continue;
        } else {
            return Err(err(
                item.pos(),
                format!("unsupported keepout shape `{tag}` (subset: rect)"),
            ));
        }
    }
    Ok(out)
}

/// One padstack shape as a layer + origin-relative rect. `rect` is
/// taken verbatim; `circle` becomes its bounding square.
fn shape_rect(inner: &Sexpr) -> Result<Shape, ParseError> {
    let tag = inner
        .tag()
        .ok_or_else(|| err(inner.pos(), "expected a shape list"))?;
    if tag.eq_ignore_ascii_case("rect") {
        Ok(Shape {
            layer: inner.atom_at(1, "shape layer")?.to_string(),
            rect: [
                inner.num_at(2, "shape x0")?,
                inner.num_at(3, "shape y0")?,
                inner.num_at(4, "shape x1")?,
                inner.num_at(5, "shape y1")?,
            ],
            pos: inner.pos(),
        })
    } else if tag.eq_ignore_ascii_case("circle") {
        let layer = inner.atom_at(1, "shape layer")?.to_string();
        let d = inner.num_at(2, "circle diameter")?;
        let cx = match inner.items().get(3) {
            Some(_) => inner.num_at(3, "circle center x")?,
            None => 0.0,
        };
        let cy = match inner.items().get(4) {
            Some(_) => inner.num_at(4, "circle center y")?,
            None => 0.0,
        };
        Ok(Shape {
            layer,
            rect: [cx - d / 2.0, cy - d / 2.0, cx + d / 2.0, cy + d / 2.0],
            pos: inner.pos(),
        })
    } else {
        Err(err(
            inner.pos(),
            format!("unsupported padstack shape `{tag}` (subset: rect, circle)"),
        ))
    }
}

/// The bounding box of a `(boundary ...)`: a `(rect pcb x0 y0 x1 y1)`
/// or the vertex bbox of a `(path pcb WIDTH x y x y ...)`.
fn boundary_bbox(boundary: &Sexpr) -> Result<(f64, f64, f64, f64), ParseError> {
    let inner = boundary
        .items()
        .get(1)
        .ok_or_else(|| err(boundary.pos(), "empty (boundary ...)"))?;
    let tag = inner
        .tag()
        .ok_or_else(|| err(inner.pos(), "expected (rect ...) or (path ...) boundary"))?;
    if tag.eq_ignore_ascii_case("rect") {
        let x0 = inner.num_at(2, "boundary x0")?;
        let y0 = inner.num_at(3, "boundary y0")?;
        let x1 = inner.num_at(4, "boundary x1")?;
        let y1 = inner.num_at(5, "boundary y1")?;
        Ok((x0.min(x1), y0.min(y1), x0.max(x1), y0.max(y1)))
    } else if tag.eq_ignore_ascii_case("path") {
        // (path pcb WIDTH x y x y ...): vertices from item 3 on.
        let coords: Vec<f64> = inner
            .items()
            .iter()
            .skip(3)
            .map(|a| {
                a.as_atom()
                    .and_then(|t| t.parse::<f64>().ok())
                    .ok_or_else(|| err(a.pos(), "bad boundary path coordinate"))
            })
            .collect::<Result<_, _>>()?;
        if coords.len() < 4 || !coords.len().is_multiple_of(2) {
            return Err(err(
                inner.pos(),
                "boundary path needs at least two x y vertices",
            ));
        }
        let xs = coords.iter().step_by(2);
        let ys = coords.iter().skip(1).step_by(2);
        Ok((
            xs.clone().fold(f64::INFINITY, |a, &b| a.min(b)),
            ys.clone().fold(f64::INFINITY, |a, &b| a.min(b)),
            xs.fold(f64::NEG_INFINITY, |a, &b| a.max(b)),
            ys.fold(f64::NEG_INFINITY, |a, &b| a.max(b)),
        ))
    } else {
        Err(err(
            inner.pos(),
            format!("unsupported boundary shape `{tag}` (subset: rect, path)"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_geom::GridPoint;

    const DSN: &str = "\
(pcb demo
  (structure
    (layer F.Cu)
    (layer B.Cu)
    (boundary (rect pcb 0 0 8000 6000))
    (grid wire 200)
    (keepout \"ko\" (rect F.Cu 3600 2600 4400 3400))
  )
  (placement
    (component LED (place D1 1000 1000 front 0) (place D2 7000 5000 front 180))
    (component RES (place R1 1000 5000 back 90))
  )
  (library
    (image LED (pin PAD-RECT A 0 0) (pin PAD-RECT K 600 0))
    (image RES (pin PAD-RECT 1 0 0) (pin PAD-RECT 2 800 0))
    (padstack PAD-RECT (shape (rect F.Cu -150 -150 150 150)))
  )
  (network
    (net ROW0 (pins D1-A R1-1))
    (net COL0 (pins D1-K D2-A R1-2))
    (net LONELY (pins D2-K))
  )
)
";

    #[test]
    fn reads_a_board_end_to_end() {
        let imp = read_dsn(DSN).expect("parses");
        assert_eq!(imp.format, Format::Dsn);
        // 8000x6000 at pitch 200 -> 40x30 tracks, 2 layers.
        assert_eq!((imp.plane.width(), imp.plane.height()), (40, 30));
        assert_eq!(imp.plane.layers(), 2);
        // Two routable nets; the single-pin net is skipped, not fatal.
        assert_eq!(imp.netlist.len(), 2);
        assert_eq!(imp.skipped_nets, 1);
        // The keepout covers cell centers inside [3600,4400]x[2600,3400]:
        // cell (19,14) has center (3900, 2900).
        assert!(!imp.plane.is_free(GridPoint::new(Layer(0), 19, 14)));
        // D1's pad A sits at (1000, 1000) -> cell (5, 5) area.
        let row0 = imp.netlist.net(sadp_grid::NetId(0));
        let primary = row0.pins().next().expect("source pin").primary();
        assert!((4..=5).contains(&primary.x) && (4..=5).contains(&primary.y));
    }

    #[test]
    fn rotation_and_mirroring_move_pads_deterministically() {
        let imp = read_dsn(DSN).expect("parses");
        let col0 = imp.netlist.net(sadp_grid::NetId(1));
        let pins: Vec<_> = col0.pins().map(Pin::primary).collect();
        // D2 is rotated 180: its pad A (offset 0,0) stays at the origin
        // (7000, 5000) -> cell (34..35, 24..25).
        assert!((34..=35).contains(&pins[1].x) && (24..=25).contains(&pins[1].y));
        // R1 is on the back at rot 90: pin 2 offset (800, 0) rotates to
        // (0, 800), mirrors to (0, 800) -> world (1000, 5800) -> cell (4..5, 28..29).
        assert!((4..=5).contains(&pins[2].x) && (28..=29).contains(&pins[2].y));
    }

    #[test]
    fn subset_violations_are_positioned_errors() {
        let e = read_dsn("(session x)").unwrap_err();
        assert!(e.to_string().contains("(pcb ...)"), "{e}");

        let e = read_dsn(&DSN.replace("(rect pcb 0 0 8000 6000)", "(circle pcb 100)")).unwrap_err();
        assert!(e.to_string().contains("unsupported boundary shape"), "{e}");

        let e = read_dsn(&DSN.replace("front 180", "front 45")).unwrap_err();
        assert!(e.to_string().contains("unsupported rotation"), "{e}");

        let e = read_dsn(&DSN.replace("(pins D1-A R1-1)", "(pins D9-A R1-1)")).unwrap_err();
        assert!(e.to_string().contains("unknown component `D9`"), "{e}");
        assert_eq!(e.pos().line, 19);

        let e = read_dsn(&DSN.replace("(rect F.Cu 3600", "(polygon F.Cu 0 3600")).unwrap_err();
        assert!(e.to_string().contains("unsupported keepout shape"), "{e}");
    }

    #[test]
    fn fully_blocked_pads_are_an_import_error() {
        // Blanket keepout over D1's pad A on its layer.
        let text = DSN.replace(
            "(keepout \"ko\" (rect F.Cu 3600 2600 4400 3400))",
            "(keepout \"ko\" (rect F.Cu 600 600 1400 1400))",
        );
        let e = read_dsn(&text).unwrap_err();
        assert!(e.to_string().contains("fully blocked"), "{e}");
    }
}
