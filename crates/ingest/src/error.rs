//! Line/column parse errors for the external-format readers.
//!
//! The `.layout` parser of `sadp_grid::io` reports the offending *line*;
//! the external formats (s-expressions, LEF/DEF token streams) put many
//! tokens on one line, so their errors also carry the *column* of the
//! token that broke the parse.

use std::error::Error;
use std::fmt;

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: usize,
    /// Column number (byte offset within the line), starting at 1.
    pub col: usize,
}

impl Pos {
    /// A position at the given line and column.
    #[must_use]
    pub fn new(line: usize, col: usize) -> Pos {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}", self.line, self.col)
    }
}

/// Error produced while parsing a DSN, LEF or DEF file.
///
/// Displays as `line L, col C: message` — the same shape as the
/// `.layout` parser's `line L: message`, with the column added.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pos: Pos,
    message: String,
}

impl ParseError {
    /// An error at the given position.
    #[must_use]
    pub fn new(pos: Pos, message: impl Into<String>) -> ParseError {
        ParseError {
            pos,
            message: message.into(),
        }
    }

    /// The source position of the error.
    #[must_use]
    pub fn pos(&self) -> Pos {
        self.pos
    }

    /// The bare message, without the position prefix.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl Error for ParseError {}

/// Shorthand constructor used throughout the readers.
pub(crate) fn err(pos: Pos, message: impl Into<String>) -> ParseError {
    ParseError::new(pos, message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_line_and_column() {
        let e = ParseError::new(Pos::new(3, 17), "bad token");
        assert_eq!(e.to_string(), "line 3, col 17: bad token");
        assert_eq!(e.pos(), Pos::new(3, 17));
        assert_eq!(e.message(), "bad token");
    }
}
