//! LEF subset reader: macro footprints for the DEF importer.
//!
//! Reads `MACRO` blocks — `SIZE`, `PIN`/`PORT` geometry and `OBS`
//! obstructions, all in microns — into a [`LefLibrary`]. The DEF
//! reader multiplies these by its own database-unit factor when
//! placing component instances.
//!
//! Subset: `RECT` geometry only (`POLYGON` is an explicit rejection);
//! statements outside the subset (`CLASS`, `FOREIGN`, `SITE`,
//! technology layers, …) are skipped at statement granularity, never
//! mis-parsed.

use crate::error::{err, ParseError};
use crate::tok::Cursor;
use std::collections::BTreeMap;

/// One pin of a macro: named geometry on routing layers.
#[derive(Debug, Clone)]
pub struct LefPin {
    /// Pin name (`A`, `Q`, `VDD`, …).
    pub name: String,
    /// `(layer name, rect)` in microns, relative to the macro origin.
    pub rects: Vec<(String, [f64; 4])>,
}

/// One macro: its size, pins and obstructions, in microns.
#[derive(Debug, Clone)]
pub struct LefMacro {
    /// `SIZE x BY y`.
    pub size: (f64, f64),
    /// Pins in declaration order.
    pub pins: Vec<LefPin>,
    /// `OBS` rectangles: `(layer name, rect)` in microns.
    pub obs: Vec<(String, [f64; 4])>,
}

impl LefMacro {
    /// The pin named `name`, if any.
    #[must_use]
    pub fn pin(&self, name: &str) -> Option<&LefPin> {
        self.pins.iter().find(|p| p.name == name)
    }
}

/// The macros of one LEF file, by name.
#[derive(Debug, Clone, Default)]
pub struct LefLibrary {
    /// Macro name → footprint.
    pub macros: BTreeMap<String, LefMacro>,
}

/// Reads the macros of a LEF file.
///
/// # Errors
///
/// Returns [`ParseError`] with line/column context on syntax problems
/// or subset violations inside `MACRO` blocks.
pub fn read_lef(text: &str) -> Result<LefLibrary, ParseError> {
    let mut c = Cursor::new(text)?;
    let mut macros = BTreeMap::new();
    while let Some(t) = c.peek() {
        if t.text.eq_ignore_ascii_case("MACRO") {
            c.next();
            let name = c.expect("macro name")?;
            let m = read_macro(&mut c, &name.text)?;
            macros.insert(name.text, m);
        } else if t.text.eq_ignore_ascii_case("END") {
            // `END LIBRARY`, `END UNITS`, `END <layer>`, ... — the END
            // keyword plus one name, no semicolon.
            c.next();
            c.next();
        } else {
            c.skip_statement();
        }
    }
    Ok(LefLibrary { macros })
}

fn read_macro(c: &mut Cursor, name: &str) -> Result<LefMacro, ParseError> {
    let mut size: Option<(f64, f64)> = None;
    let mut pins = Vec::new();
    let mut obs = Vec::new();
    loop {
        let t = c.expect(&format!("a statement in MACRO {name}"))?;
        if t.text.eq_ignore_ascii_case("END") {
            let got = c.expect(&format!("`{name}` closing MACRO {name}"))?;
            if got.text != name {
                return Err(err(
                    got.pos,
                    format!("expected `END {name}`, got `END {}`", got.text),
                ));
            }
            break;
        } else if t.text.eq_ignore_ascii_case("SIZE") {
            let x = c.num("macro size x")?;
            c.expect_text("BY")?;
            let y = c.num("macro size y")?;
            c.expect_text(";")?;
            size = Some((x, y));
        } else if t.text.eq_ignore_ascii_case("PIN") {
            let pin_name = c.expect("pin name")?;
            pins.push(read_pin(c, &pin_name.text)?);
        } else if t.text.eq_ignore_ascii_case("OBS") {
            read_geometry(c, "OBS", &mut obs)?;
        } else {
            c.skip_statement();
        }
    }
    let size = size.ok_or_else(|| err(c.pos(), format!("MACRO {name} has no SIZE statement")))?;
    Ok(LefMacro { size, pins, obs })
}

fn read_pin(c: &mut Cursor, name: &str) -> Result<LefPin, ParseError> {
    let mut rects = Vec::new();
    loop {
        let t = c.expect(&format!("a statement in PIN {name}"))?;
        if t.text.eq_ignore_ascii_case("END") {
            let got = c.expect(&format!("`{name}` closing PIN {name}"))?;
            if got.text != name {
                return Err(err(
                    got.pos,
                    format!("expected `END {name}`, got `END {}`", got.text),
                ));
            }
            break;
        } else if t.text.eq_ignore_ascii_case("PORT") {
            read_geometry(c, "PORT", &mut rects)?;
        } else {
            c.skip_statement();
        }
    }
    Ok(LefPin {
        name: name.to_string(),
        rects,
    })
}

/// Reads a `PORT`/`OBS` geometry body up to its bare `END`: `LAYER`
/// selections and `RECT` statements.
fn read_geometry(
    c: &mut Cursor,
    what: &str,
    out: &mut Vec<(String, [f64; 4])>,
) -> Result<(), ParseError> {
    let mut layer: Option<String> = None;
    loop {
        let t = c.expect(&format!("a statement in {what}"))?;
        if t.text.eq_ignore_ascii_case("END") {
            return Ok(());
        } else if t.text.eq_ignore_ascii_case("LAYER") {
            layer = Some(c.expect("layer name")?.text);
            // Optional qualifiers (SPACING x, DESIGNRULEWIDTH x) up to `;`.
            c.skip_statement();
        } else if t.text.eq_ignore_ascii_case("RECT") {
            let Some(layer) = layer.clone() else {
                return Err(err(t.pos, format!("RECT before any LAYER in {what}")));
            };
            let r = [
                c.num("rect x0")?,
                c.num("rect y0")?,
                c.num("rect x1")?,
                c.num("rect y1")?,
            ];
            c.expect_text(";")?;
            out.push((layer, r));
        } else if t.text.eq_ignore_ascii_case("POLYGON") {
            return Err(err(
                t.pos,
                format!("unsupported POLYGON in {what} (subset: RECT)"),
            ));
        } else {
            c.skip_statement();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEF: &str = "\
VERSION 5.7 ;
BUSBITCHARS \"[]\" ;
MACRO RAM1
  CLASS BLOCK ;
  ORIGIN 0 0 ;
  SIZE 20 BY 16 ;
  PIN A
    DIRECTION INPUT ;
    PORT
      LAYER metal1 ;
      RECT 0.0 7.0 1.0 9.0 ;
    END
  END A
  OBS
    LAYER metal1 ;
    RECT 2.0 0.0 18.0 16.0 ;
    LAYER metal2 ;
    RECT 2.0 0.0 18.0 16.0 ;
  END
END RAM1
END LIBRARY
";

    #[test]
    fn reads_macros_pins_and_obstructions() {
        let lib = read_lef(LEF).expect("parses");
        let m = lib.macros.get("RAM1").expect("RAM1 present");
        assert_eq!(m.size, (20.0, 16.0));
        let a = m.pin("A").expect("pin A");
        assert_eq!(a.rects, vec![("metal1".to_string(), [0.0, 7.0, 1.0, 9.0])]);
        assert_eq!(m.obs.len(), 2);
        assert_eq!(m.obs[1].0, "metal2");
    }

    #[test]
    fn rejects_polygons_with_position() {
        let text = LEF.replace("RECT 0.0 7.0 1.0 9.0 ;", "POLYGON 0 0 1 0 1 1 ;");
        let e = read_lef(&text).unwrap_err();
        assert!(e.to_string().contains("unsupported POLYGON"), "{e}");
        assert_eq!(e.pos().line, 11);
    }

    #[test]
    fn missing_size_is_an_error() {
        let e = read_lef("MACRO M\nEND M\n").unwrap_err();
        assert!(e.to_string().contains("no SIZE"), "{e}");
    }
}
