//! Real-layout ingestion: Specctra DSN and LEF/DEF subset readers.
//!
//! The router's native `.layout` fixtures are hand-written; this crate
//! maps real board (`.dsn`) and IC-block (`.def` + `.lef`) geometry
//! onto the same `(RoutingPlane, Netlist)` pair, so every downstream
//! stage — routing, SADP decomposition, verification, the benchmark
//! fleet — runs unchanged on imported designs.
//!
//! Entry points:
//!
//! * [`detect_format`] — content sniffing with the file extension as a
//!   tie-breaking hint only,
//! * [`ingest_text`] — parse any supported format into an [`Imported`],
//! * [`sidecar_lef`] — the `FILE.lef` conventionally next to `FILE.def`.
//!
//! The snapping policy lives in [`snap`]; the subset coverage and
//! rejection rules are documented per reader ([`dsn`], [`lef`],
//! [`def`]) and summarised in DESIGN.md ("Ingestion").

pub mod def;
pub mod dsn;
mod error;
pub mod lef;
mod map;
pub mod sexpr;
pub mod snap;
mod tok;

pub use error::{ParseError, Pos};

use sadp_grid::{read_layout, Netlist, ParseLayoutError, RoutingPlane};
use std::path::{Path, PathBuf};

/// A supported input format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// The native `.layout` text format.
    Layout,
    /// Specctra DSN board description.
    Dsn,
    /// DEF (with an optional LEF library for macros).
    Def,
}

impl Format {
    /// The lowercase format name used in messages and benchmark records.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Format::Layout => "layout",
            Format::Dsn => "dsn",
            Format::Def => "def",
        }
    }
}

/// An ingested design: the routing problem plus import provenance.
#[derive(Debug)]
pub struct Imported {
    /// The snapped routing plane with all obstacles applied.
    pub plane: RoutingPlane,
    /// The netlist, pads resolved to multi-candidate pin groups.
    pub netlist: Netlist,
    /// Which reader produced this.
    pub format: Format,
    /// Nets dropped for having fewer than two resolvable pins.
    pub skipped_nets: usize,
    /// Human-readable import notes (grid dimensions, pitch source,
    /// obstacle counts) for the CLI summary line.
    pub notes: Vec<String>,
}

/// An ingestion failure, wrapping whichever parser ran.
#[derive(Debug)]
pub enum IngestError {
    /// The native `.layout` parser failed (`line N: msg`).
    Layout(ParseLayoutError),
    /// A DSN/LEF/DEF reader failed (`line N, col C: msg`).
    Parse(Format, ParseError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Layout(e) => write!(f, "{e}"),
            IngestError::Parse(format, e) => write!(f, "{}: {e}", format.name()),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<ParseLayoutError> for IngestError {
    fn from(e: ParseLayoutError) -> IngestError {
        IngestError::Layout(e)
    }
}

/// Sniffs the format from the file content, consulting the extension
/// only when the content is ambiguous.
///
/// The first non-empty, non-`#`-comment line decides: `(` opens a DSN
/// s-expression; a `.layout` keyword (`plane`, `blockage`, `net`) is
/// the native format; a DEF header keyword (`VERSION`, `DESIGN`,
/// `UNITS`, `DIEAREA`, `NAMESCASESENSITIVE`, `TECHNOLOGY`,
/// `COMPONENTS`) is DEF. Only when none of these match does the
/// extension hint decide, defaulting to `.layout` (whose parser then
/// reports the offending line).
#[must_use]
pub fn detect_format(text: &str, path_hint: Option<&Path>) -> Format {
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('(') {
            return Format::Dsn;
        }
        let word = line.split_whitespace().next().unwrap_or("");
        if matches!(word, "plane" | "blockage" | "net") {
            return Format::Layout;
        }
        if [
            "VERSION",
            "DESIGN",
            "UNITS",
            "DIEAREA",
            "NAMESCASESENSITIVE",
            "TECHNOLOGY",
            "COMPONENTS",
        ]
        .iter()
        .any(|kw| word.eq_ignore_ascii_case(kw))
        {
            return Format::Def;
        }
        break;
    }
    match path_hint.and_then(Path::extension).and_then(|e| e.to_str()) {
        Some(ext) if ext.eq_ignore_ascii_case("dsn") => Format::Dsn,
        Some(ext) if ext.eq_ignore_ascii_case("def") => Format::Def,
        _ => Format::Layout,
    }
}

/// Parses `text` in whatever format [`detect_format`] sniffs.
///
/// `lef` supplies macro footprints when the text turns out to be a DEF
/// with components.
///
/// # Errors
///
/// Returns [`IngestError`] wrapping the failing parser's error.
pub fn ingest_text(
    text: &str,
    path_hint: Option<&Path>,
    lef: Option<&lef::LefLibrary>,
) -> Result<Imported, IngestError> {
    match detect_format(text, path_hint) {
        Format::Layout => {
            let (plane, netlist) = read_layout(text)?;
            Ok(Imported {
                plane,
                netlist,
                format: Format::Layout,
                skipped_nets: 0,
                notes: Vec::new(),
            })
        }
        Format::Dsn => dsn::read_dsn(text).map_err(|e| IngestError::Parse(Format::Dsn, e)),
        Format::Def => def::read_def(text, lef).map_err(|e| IngestError::Parse(Format::Def, e)),
    }
}

/// The conventional LEF sidecar of a DEF path: the same file name with
/// a `.lef` extension, when it exists on disk.
#[must_use]
pub fn sidecar_lef(def_path: &Path) -> Option<PathBuf> {
    let candidate = def_path.with_extension("lef");
    (candidate != def_path && candidate.is_file()).then_some(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_sniffing_beats_the_extension() {
        // A native layout saved with a misleading extension still
        // parses as a layout.
        let layout = "plane 2 8 8\nnet a 0:0,0 0:7,7\n";
        assert_eq!(
            detect_format(layout, Some(Path::new("board.dsn"))),
            Format::Layout
        );
        // Comments and blank lines are skipped before sniffing.
        let dsn = "# exported\n\n(pcb demo)\n";
        assert_eq!(
            detect_format(dsn, Some(Path::new("design.layout"))),
            Format::Dsn
        );
        let def = "VERSION 5.8 ;\nEND DESIGN\n";
        assert_eq!(detect_format(def, Some(Path::new("chip.txt"))), Format::Def);
    }

    #[test]
    fn ambiguous_content_falls_back_to_the_extension_hint() {
        assert_eq!(
            detect_format("xyzzy\n", Some(Path::new("a.dsn"))),
            Format::Dsn
        );
        assert_eq!(
            detect_format("xyzzy\n", Some(Path::new("a.def"))),
            Format::Def
        );
        assert_eq!(detect_format("xyzzy\n", None), Format::Layout);
        assert_eq!(detect_format("", None), Format::Layout);
    }

    #[test]
    fn ingest_text_routes_to_the_right_parser() {
        let imp =
            ingest_text("plane 2 8 8\nnet a 0:0,0 0:7,7\n", None, None).expect("layout parses");
        assert_eq!(imp.format, Format::Layout);
        assert_eq!(imp.netlist.len(), 1);

        let e = ingest_text("(pcb demo)", None, None).unwrap_err();
        assert!(e.to_string().starts_with("dsn: "), "{e}");

        let e = ingest_text("VERSION 5.8 ;\nEND DESIGN\n", None, None).unwrap_err();
        assert!(e.to_string().starts_with("def: "), "{e}");
        assert!(e.to_string().contains("missing DIEAREA"), "{e}");
    }
}
