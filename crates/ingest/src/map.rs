//! Pad-to-pin-group mapping shared by the DSN and DEF readers.

use sadp_geom::{GridPoint, Layer};
use sadp_grid::net::Pin;
use sadp_grid::RoutingPlane;

/// A pad rectangle snapped to the track grid: a layer plus an
/// inclusive `(x0, y0, x1, y1)` cell range.
pub(crate) type PadRect = (Layer, (i32, i32, i32, i32));

/// Cap on candidate locations per pad. Real pads can cover dozens of
/// cells; the router only needs a handful of well-spread entry points,
/// and the A* source/target sets stay small.
pub(crate) const MAX_PAD_CANDIDATES: usize = 8;

/// Maps a pad — the union of one or more snapped layer-rectangles —
/// into a multi-candidate [`Pin`].
///
/// Every free cell covered by the rectangles is a candidate; blocked
/// cells (keepouts, macro obstructions) are filtered out. Candidates
/// are ordered by distance from the pad's geometric center (ties:
/// layer, then y, then x — fully deterministic) and capped at
/// [`MAX_PAD_CANDIDATES`]. Returns `None` when every covered cell is
/// blocked, which the callers report as an import error.
pub(crate) fn pad_pin(plane: &RoutingPlane, rects: &[PadRect]) -> Option<Pin> {
    let mut cells: Vec<GridPoint> = Vec::new();
    let (mut sx, mut sy, mut n) = (0i64, 0i64, 0i64);
    for &(layer, (x0, y0, x1, y1)) in rects {
        for y in y0..=y1 {
            for x in x0..=x1 {
                let p = GridPoint::new(layer, x, y);
                if plane.in_bounds(p) {
                    sx += i64::from(x);
                    sy += i64::from(y);
                    n += 1;
                    if plane.is_free(p) && !cells.contains(&p) {
                        cells.push(p);
                    }
                }
            }
        }
    }
    if cells.is_empty() {
        return None;
    }
    // Distance from the covered-area centroid, doubled coordinates so
    // the comparison stays integral.
    let (cx2, cy2) = (2 * sx / n, 2 * sy / n);
    let dist2 = |p: &GridPoint| {
        let dx = 2 * i64::from(p.x) - cx2;
        let dy = 2 * i64::from(p.y) - cy2;
        dx * dx + dy * dy
    };
    cells.sort_by_key(|p| (dist2(p), p.layer.0, p.y, p.x));
    cells.truncate(MAX_PAD_CANDIDATES);
    Some(Pin::with_candidates(cells))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sadp_geom::{DesignRules, TrackRect};

    fn plane() -> RoutingPlane {
        RoutingPlane::new(2, 16, 16, DesignRules::node_10nm()).expect("valid plane")
    }

    #[test]
    fn candidates_are_center_out_and_capped() {
        let plane = plane();
        let pin = pad_pin(&plane, &[(Layer(0), (2, 2, 5, 5))]).expect("free pad");
        assert_eq!(pin.candidates().len(), MAX_PAD_CANDIDATES);
        // The first candidate is one of the four central cells.
        let first = pin.primary();
        assert!((3..=4).contains(&first.x) && (3..=4).contains(&first.y));
    }

    #[test]
    fn blocked_cells_are_filtered_and_full_blockage_is_none() {
        let mut plane = plane();
        plane.add_blockage(Layer(0), TrackRect::new(2, 2, 4, 5));
        let pin = pad_pin(&plane, &[(Layer(0), (2, 2, 5, 5))]).expect("one column free");
        assert!(pin.candidates().iter().all(|p| p.x == 5));
        plane.add_blockage(Layer(0), TrackRect::new(5, 2, 5, 5));
        assert!(pad_pin(&plane, &[(Layer(0), (2, 2, 5, 5))]).is_none());
    }

    #[test]
    fn multi_layer_pads_merge_and_dedup() {
        let plane = plane();
        let pin = pad_pin(
            &plane,
            &[
                (Layer(0), (1, 1, 1, 1)),
                (Layer(1), (1, 1, 1, 1)),
                (Layer(0), (1, 1, 1, 1)),
            ],
        )
        .expect("free pad");
        assert_eq!(pin.candidates().len(), 2);
    }
}
