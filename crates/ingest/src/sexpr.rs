//! A position-tracking s-expression reader for Specctra DSN files.
//!
//! The Specctra design language is a tree of parenthesised lists whose
//! leaves are bare atoms or double-quoted strings. This module parses
//! one top-level expression into [`Sexpr`], keeping the 1-based
//! line/column of every node so the DSN reader can report errors at the
//! construct that caused them.

use crate::error::{err, ParseError, Pos};

/// One node of the parsed tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Sexpr {
    /// A bare or quoted atom.
    Atom { text: String, pos: Pos },
    /// A parenthesised list.
    List { items: Vec<Sexpr>, pos: Pos },
}

impl Sexpr {
    /// The source position of the node (of the opening paren for lists).
    #[must_use]
    pub fn pos(&self) -> Pos {
        match self {
            Sexpr::Atom { pos, .. } | Sexpr::List { pos, .. } => *pos,
        }
    }

    /// The atom text, if this node is an atom.
    #[must_use]
    pub fn as_atom(&self) -> Option<&str> {
        match self {
            Sexpr::Atom { text, .. } => Some(text),
            Sexpr::List { .. } => None,
        }
    }

    /// The list items (empty slice for atoms).
    #[must_use]
    pub fn items(&self) -> &[Sexpr] {
        match self {
            Sexpr::Atom { .. } => &[],
            Sexpr::List { items, .. } => items,
        }
    }

    /// The tag of a list: its first item, when that is an atom.
    #[must_use]
    pub fn tag(&self) -> Option<&str> {
        self.items().first().and_then(Sexpr::as_atom)
    }

    /// Whether this is a list tagged `tag` (ASCII case-insensitive, as
    /// Specctra keywords are case-insensitive).
    #[must_use]
    pub fn is(&self, tag: &str) -> bool {
        self.tag().is_some_and(|t| t.eq_ignore_ascii_case(tag))
    }

    /// The child lists tagged `tag`, in order.
    pub fn children<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a Sexpr> + 'a {
        self.items().iter().skip(1).filter(move |s| s.is(tag))
    }

    /// The first child list tagged `tag`.
    #[must_use]
    pub fn child<'a>(&'a self, tag: &str) -> Option<&'a Sexpr> {
        self.items().iter().skip(1).find(|s| s.is(tag))
    }

    /// The `i`-th item as an atom, or an error naming the tag.
    pub fn atom_at(&self, i: usize, what: &str) -> Result<&str, ParseError> {
        self.items()
            .get(i)
            .and_then(Sexpr::as_atom)
            .ok_or_else(|| err(self.pos(), format!("expected {what}")))
    }

    /// The `i`-th item as a number, or an error naming the tag.
    pub fn num_at(&self, i: usize, what: &str) -> Result<f64, ParseError> {
        let text = self.atom_at(i, what)?;
        text.parse::<f64>()
            .map_err(|_| err(self.pos(), format!("expected {what}, got `{text}`")))
    }
}

/// Parses one top-level s-expression; trailing content is an error.
///
/// # Errors
///
/// Returns [`ParseError`] with line/column on unbalanced parentheses,
/// an unterminated string, or garbage outside the top-level list.
pub fn parse(text: &str) -> Result<Sexpr, ParseError> {
    let mut lexer = Lexer::new(text);
    let first = lexer
        .next_token()?
        .ok_or_else(|| err(Pos::new(1, 1), "empty input (expected `(pcb ...)`)"))?;
    let expr = parse_node(&mut lexer, first)?;
    if let Some(tok) = lexer.next_token()? {
        return Err(err(tok.pos, "trailing content after the top-level list"));
    }
    Ok(expr)
}

fn parse_node(lexer: &mut Lexer<'_>, tok: Token) -> Result<Sexpr, ParseError> {
    match tok.kind {
        TokenKind::LParen => {
            let pos = tok.pos;
            let mut items = Vec::new();
            loop {
                let tok = lexer
                    .next_token()?
                    .ok_or_else(|| err(pos, "unclosed `(`"))?;
                if matches!(tok.kind, TokenKind::RParen) {
                    return Ok(Sexpr::List { items, pos });
                }
                items.push(parse_node(lexer, tok)?);
            }
        }
        TokenKind::RParen => Err(err(tok.pos, "unmatched `)`")),
        TokenKind::Atom(text) => Ok(Sexpr::Atom { text, pos: tok.pos }),
    }
}

enum TokenKind {
    LParen,
    RParen,
    Atom(String),
}

struct Token {
    kind: TokenKind,
    pos: Pos,
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Lexer<'a> {
        Lexer {
            chars: text.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn next_token(&mut self) -> Result<Option<Token>, ParseError> {
        loop {
            match self.chars.peek() {
                None => return Ok(None),
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    // `#` line comments, matching the native `.layout`
                    // format (fixtures carry provenance headers).
                    while let Some(&c) = self.chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('(') => {
                    let pos = self.pos();
                    self.bump();
                    return Ok(Some(Token {
                        kind: TokenKind::LParen,
                        pos,
                    }));
                }
                Some(')') => {
                    let pos = self.pos();
                    self.bump();
                    return Ok(Some(Token {
                        kind: TokenKind::RParen,
                        pos,
                    }));
                }
                Some('"') => {
                    let pos = self.pos();
                    self.bump();
                    let mut text = String::new();
                    loop {
                        match self.bump() {
                            None => return Err(err(pos, "unterminated string")),
                            Some('"') => break,
                            Some('\\') => match self.bump() {
                                None => return Err(err(pos, "unterminated string")),
                                Some(c) => text.push(c),
                            },
                            Some(c) => text.push(c),
                        }
                    }
                    return Ok(Some(Token {
                        kind: TokenKind::Atom(text),
                        pos,
                    }));
                }
                Some(_) => {
                    let pos = self.pos();
                    let mut text = String::new();
                    while let Some(&c) = self.chars.peek() {
                        if c.is_whitespace() || c == '(' || c == ')' || c == '"' {
                            break;
                        }
                        text.push(c);
                        self.bump();
                    }
                    return Ok(Some(Token {
                        kind: TokenKind::Atom(text),
                        pos,
                    }));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_lists_with_positions() {
        let e = parse("(pcb demo\n  (structure (layer F.Cu))\n)").expect("parses");
        assert!(e.is("pcb"));
        assert_eq!(e.items()[1].as_atom(), Some("demo"));
        let structure = e.child("structure").expect("structure child");
        assert_eq!(structure.pos(), Pos::new(2, 3));
        let layer = structure.child("layer").expect("layer child");
        assert_eq!(layer.atom_at(1, "layer name").unwrap(), "F.Cu");
    }

    #[test]
    fn hash_comments_are_skipped() {
        let e = parse("# provenance header\n(pcb demo) # trailing\n").expect("parses");
        assert!(e.is("pcb"));
    }

    #[test]
    fn quoted_strings_are_single_atoms() {
        let e = parse("(keepout \"mount hole (m3)\" (rect pcb 0 0 1 1))").expect("parses");
        assert_eq!(e.items()[1].as_atom(), Some("mount hole (m3)"));
    }

    #[test]
    fn errors_carry_line_and_column() {
        let e = parse("(pcb\n  (structure\n)").unwrap_err();
        assert_eq!(e.to_string(), "line 1, col 1: unclosed `(`");
        let e = parse("(pcb))").unwrap_err();
        assert_eq!(
            e.to_string(),
            "line 1, col 6: trailing content after the top-level list"
        );
        let e = parse(")").unwrap_err();
        assert_eq!(e.to_string(), "line 1, col 1: unmatched `)`");
        let e = parse("(pcb \"open").unwrap_err();
        assert!(e.to_string().contains("unterminated string"), "{e}");
        let e = parse("   ").unwrap_err();
        assert!(e.to_string().contains("empty input"), "{e}");
    }

    #[test]
    fn num_at_reports_the_bad_atom() {
        let e = parse("(rect pcb zero 0 1 1)").expect("parses");
        let got = e.num_at(2, "rect x0").unwrap_err();
        assert!(got.to_string().contains("rect x0"), "{got}");
        assert!(got.to_string().contains("`zero`"), "{got}");
    }
}
