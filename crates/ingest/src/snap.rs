//! Grid snapping: mapping real-world coordinates onto the track grid.
//!
//! The router works on a uniform track grid; real boards and blocks use
//! arbitrary-precision coordinates and (sometimes) non-uniform tracks.
//! The snapping policy, shared by every importer and documented in
//! DESIGN.md ("Ingestion"):
//!
//! * One pitch per design. The pitch is the explicit wire grid when the
//!   file declares one (DSN `(grid wire P)`, DEF `TRACKS ... STEP P`;
//!   the smallest declared step wins), otherwise it is derived so the
//!   longer die dimension maps to [`TARGET_TRACKS`] tracks.
//! * Track `i` covers the half-open world span
//!   `[min + i*pitch, min + (i+1)*pitch)`; its center sits at
//!   `min + (i + 0.5) * pitch`. A point snaps to the track whose span
//!   contains it, clamped to the die.
//! * A rectangle (pad, keepout, macro obstacle) covers every cell whose
//!   *center* lies inside it; a rectangle narrower than a cell still
//!   covers the single cell containing its own center, so no shape
//!   vanishes in the snap.
//! * Designs that would exceed [`MAX_TRACKS`] tracks on either axis are
//!   rejected (route a coarser grid instead of silently exploding), as
//!   are degenerate boundaries under [`MIN_TRACKS`].

/// Track count the derived pitch aims for on the longer die axis.
pub const TARGET_TRACKS: i32 = 256;

/// Hard ceiling on tracks per axis; above this the import is rejected.
pub const MAX_TRACKS: i32 = 2048;

/// Minimum tracks per axis for a meaningful routing problem.
pub const MIN_TRACKS: i32 = 4;

/// The world-to-track mapping for one imported design.
#[derive(Debug, Clone, Copy)]
pub struct Snapper {
    min_x: f64,
    min_y: f64,
    pitch: f64,
    width: i32,
    height: i32,
}

impl Snapper {
    /// Builds the mapping for a world bounding box and an optional
    /// explicit pitch (in the same world units).
    ///
    /// # Errors
    ///
    /// Returns a message (no position — the caller attaches one) when
    /// the box is degenerate or the track counts leave
    /// `[MIN_TRACKS, MAX_TRACKS]`.
    pub fn new(
        (min_x, min_y, max_x, max_y): (f64, f64, f64, f64),
        explicit_pitch: Option<f64>,
    ) -> Result<Snapper, String> {
        let (dx, dy) = (max_x - min_x, max_y - min_y);
        if !(dx > 0.0 && dy > 0.0 && dx.is_finite() && dy.is_finite()) {
            return Err(format!("degenerate boundary ({dx} x {dy} world units)"));
        }
        let pitch = match explicit_pitch {
            Some(p) if p > 0.0 && p.is_finite() => p,
            Some(p) => return Err(format!("grid pitch must be positive, got {p}")),
            None => dx.max(dy) / f64::from(TARGET_TRACKS),
        };
        let tracks = |d: f64| (d / pitch).ceil().max(1.0) as i64;
        let (w, h) = (tracks(dx), tracks(dy));
        for (axis, n) in [("x", w), ("y", h)] {
            if n > i64::from(MAX_TRACKS) {
                return Err(format!(
                    "{n} {axis}-tracks at pitch {pitch} exceeds the {MAX_TRACKS}-track \
                     import ceiling (coarsen the grid)"
                ));
            }
            if n < i64::from(MIN_TRACKS) {
                return Err(format!(
                    "{n} {axis}-tracks at pitch {pitch} is below the {MIN_TRACKS}-track \
                     minimum (boundary too small for this grid)"
                ));
            }
        }
        Ok(Snapper {
            min_x,
            min_y,
            pitch,
            width: w as i32,
            height: h as i32,
        })
    }

    /// Tracks along x.
    #[must_use]
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Tracks along y.
    #[must_use]
    pub fn height(&self) -> i32 {
        self.height
    }

    /// The pitch in world units.
    #[must_use]
    pub fn pitch(&self) -> f64 {
        self.pitch
    }

    /// Snaps a world x to its track index, clamped to the die.
    #[must_use]
    pub fn x(&self, wx: f64) -> i32 {
        (((wx - self.min_x) / self.pitch).floor() as i64).clamp(0, i64::from(self.width - 1)) as i32
    }

    /// Snaps a world y to its track index, clamped to the die.
    #[must_use]
    pub fn y(&self, wy: f64) -> i32 {
        (((wy - self.min_y) / self.pitch).floor() as i64).clamp(0, i64::from(self.height - 1))
            as i32
    }

    /// The inclusive track-rectangle covered by a world rectangle: every
    /// cell whose center lies inside it, or the center cell when the
    /// rectangle is narrower than a cell. Corners may be given in any
    /// order.
    #[must_use]
    pub fn rect(&self, x0: f64, y0: f64, x1: f64, y1: f64) -> (i32, i32, i32, i32) {
        let (x0, x1) = (x0.min(x1), x0.max(x1));
        let (y0, y1) = (y0.min(y1), y0.max(y1));
        let lo = |v: f64, min: f64| ((v - min) / self.pitch - 0.5).ceil() as i64;
        let hi = |v: f64, min: f64| ((v - min) / self.pitch - 0.5).floor() as i64;
        let span = |a: f64, b: f64, min: f64, n: i32, center: i32| -> (i32, i32) {
            let (l, h) = (lo(a, min), hi(b, min));
            if l > h {
                (center, center)
            } else {
                (
                    l.clamp(0, i64::from(n - 1)) as i32,
                    h.clamp(0, i64::from(n - 1)) as i32,
                )
            }
        };
        let (cx, cy) = (self.x((x0 + x1) / 2.0), self.y((y0 + y1) / 2.0));
        let (ix0, ix1) = span(x0, x1, self.min_x, self.width, cx);
        let (iy0, iy1) = span(y0, y1, self.min_y, self.height, cy);
        (ix0, iy0, ix1, iy1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_pitch_sets_the_track_count() {
        let s = Snapper::new((0.0, 0.0, 8000.0, 6000.0), Some(200.0)).expect("valid");
        assert_eq!((s.width(), s.height()), (40, 30));
        // Track 0 covers [0, 200): both ends snap inside it.
        assert_eq!(s.x(0.0), 0);
        assert_eq!(s.x(199.9), 0);
        assert_eq!(s.x(200.0), 1);
        // Clamped at the die edge.
        assert_eq!(s.x(8000.0), 39);
        assert_eq!(s.x(-5.0), 0);
    }

    #[test]
    fn derived_pitch_targets_the_track_budget() {
        let s = Snapper::new((0.0, 0.0, 1.0, 0.5), None).expect("valid");
        assert_eq!(s.width(), TARGET_TRACKS);
        assert_eq!(s.height(), TARGET_TRACKS / 2);
    }

    #[test]
    fn rect_covers_cell_centers_and_never_vanishes() {
        let s = Snapper::new((0.0, 0.0, 1000.0, 1000.0), Some(100.0)).expect("valid");
        // Centers at 50, 150, ... 350 lie inside [20, 390].
        assert_eq!(s.rect(20.0, 20.0, 390.0, 390.0), (0, 0, 3, 3));
        // A sliver thinner than a cell keeps its center cell.
        assert_eq!(s.rect(210.0, 210.0, 220.0, 215.0), (2, 2, 2, 2));
        // Swapped corners are normalised.
        assert_eq!(s.rect(390.0, 390.0, 20.0, 20.0), (0, 0, 3, 3));
    }

    #[test]
    fn rejects_degenerate_and_oversized_imports() {
        assert!(Snapper::new((0.0, 0.0, 0.0, 10.0), None).is_err());
        assert!(Snapper::new((0.0, 0.0, 10.0, 10.0), Some(0.0)).is_err());
        assert!(Snapper::new((0.0, 0.0, 1e9, 1e9), Some(1.0))
            .unwrap_err()
            .contains("ceiling"));
        assert!(Snapper::new((0.0, 0.0, 10.0, 10.0), Some(5.0))
            .unwrap_err()
            .contains("minimum"));
    }
}
