//! A position-tracking token cursor shared by the LEF and DEF readers.
//!
//! Both formats are whitespace-separated token streams with `#` line
//! comments, `;` statement terminators and parenthesised coordinate
//! pairs. The cursor pre-tokenises the whole file (keeping the 1-based
//! line/column of every token) and exposes the small lookahead /
//! expectation API the readers are written against.

use crate::error::{err, ParseError, Pos};

/// One token: its text and source position.
#[derive(Debug, Clone)]
pub(crate) struct Tok {
    pub text: String,
    pub pos: Pos,
}

/// A forward-only cursor over the token stream.
pub(crate) struct Cursor {
    toks: Vec<Tok>,
    i: usize,
    eof: Pos,
}

impl Cursor {
    /// Tokenises `text`. `(`, `)` and `;` are single-character tokens;
    /// `#` starts a comment running to end of line; double-quoted
    /// strings are one token without the quotes.
    pub fn new(text: &str) -> Result<Cursor, ParseError> {
        let mut toks = Vec::new();
        let (mut line, mut col) = (1usize, 1usize);
        let mut chars = text.chars().peekable();
        let bump = |chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
                    line: &mut usize,
                    col: &mut usize|
         -> Option<char> {
            let c = chars.next()?;
            if c == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            Some(c)
        };
        while let Some(&c) = chars.peek() {
            if c.is_whitespace() {
                bump(&mut chars, &mut line, &mut col);
            } else if c == '#' {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump(&mut chars, &mut line, &mut col);
                }
            } else if c == '(' || c == ')' || c == ';' {
                toks.push(Tok {
                    text: c.to_string(),
                    pos: Pos::new(line, col),
                });
                bump(&mut chars, &mut line, &mut col);
            } else if c == '"' {
                let pos = Pos::new(line, col);
                bump(&mut chars, &mut line, &mut col);
                let mut text = String::new();
                loop {
                    match bump(&mut chars, &mut line, &mut col) {
                        None => return Err(err(pos, "unterminated string")),
                        Some('"') => break,
                        Some(c) => text.push(c),
                    }
                }
                toks.push(Tok { text, pos });
            } else {
                let pos = Pos::new(line, col);
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || matches!(c, '(' | ')' | ';' | '#' | '"') {
                        break;
                    }
                    text.push(c);
                    bump(&mut chars, &mut line, &mut col);
                }
                toks.push(Tok { text, pos });
            }
        }
        Ok(Cursor {
            toks,
            i: 0,
            eof: Pos::new(line, col),
        })
    }

    /// The next token without consuming it.
    pub fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i)
    }

    /// Consumes and returns the next token.
    pub fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    /// The position of the next token, or end-of-file.
    pub fn pos(&self) -> Pos {
        self.peek().map_or(self.eof, |t| t.pos)
    }

    /// Consumes the next token, erroring with `expected {what}` at
    /// end-of-file.
    pub fn expect(&mut self, what: &str) -> Result<Tok, ParseError> {
        let eof = self.eof;
        self.next()
            .ok_or_else(|| err(eof, format!("expected {what}, got end of file")))
    }

    /// Consumes the next token and requires its exact text
    /// (case-insensitive for keywords).
    pub fn expect_text(&mut self, text: &str) -> Result<Tok, ParseError> {
        let t = self.expect(&format!("`{text}`"))?;
        if t.text.eq_ignore_ascii_case(text) {
            Ok(t)
        } else {
            Err(err(t.pos, format!("expected `{text}`, got `{}`", t.text)))
        }
    }

    /// Consumes the next token as a number.
    pub fn num(&mut self, what: &str) -> Result<f64, ParseError> {
        let t = self.expect(what)?;
        t.text
            .parse::<f64>()
            .map_err(|_| err(t.pos, format!("expected {what}, got `{}`", t.text)))
    }

    /// Consumes the next token when it matches `text`
    /// (case-insensitive); returns whether it did.
    pub fn eat(&mut self, text: &str) -> bool {
        if self
            .peek()
            .is_some_and(|t| t.text.eq_ignore_ascii_case(text))
        {
            self.i += 1;
            true
        } else {
            false
        }
    }

    /// Skips tokens through the next `;` (inclusive). Used to pass over
    /// statements outside the supported subset.
    pub fn skip_statement(&mut self) {
        while let Some(t) = self.next() {
            if t.text == ";" {
                return;
            }
        }
    }

    /// Reads a parenthesised coordinate pair `( x y )`.
    pub fn point(&mut self, what: &str) -> Result<(f64, f64), ParseError> {
        self.expect_text("(")?;
        let x = self.num(&format!("{what} x"))?;
        let y = self.num(&format!("{what} y"))?;
        self.expect_text(")")?;
        Ok((x, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenises_punctuation_comments_and_positions() {
        let mut c =
            Cursor::new("UNITS DISTANCE MICRONS 100 ; # dbu\nDIEAREA ( 0 0 ) ( 64000 48000 ) ;")
                .expect("tokenises");
        assert!(c.eat("units"));
        c.expect_text("DISTANCE").unwrap();
        c.expect_text("MICRONS").unwrap();
        assert_eq!(c.num("dbu").unwrap(), 100.0);
        c.expect_text(";").unwrap();
        let t = c.expect("DIEAREA").unwrap();
        assert_eq!(t.pos, Pos::new(2, 1));
        assert_eq!(c.point("diearea corner").unwrap(), (0.0, 0.0));
        assert_eq!(c.point("diearea corner").unwrap(), (64000.0, 48000.0));
    }

    #[test]
    fn errors_name_the_expectation_and_position() {
        let mut c = Cursor::new("DIEAREA ( zero 0 )").expect("tokenises");
        c.expect_text("DIEAREA").unwrap();
        let e = c.point("diearea corner").unwrap_err();
        assert_eq!(
            e.to_string(),
            "line 1, col 11: expected diearea corner x, got `zero`"
        );
        let mut c = Cursor::new("END").expect("tokenises");
        c.expect_text("END").unwrap();
        let e = c.expect("a design statement").unwrap_err();
        assert!(e.to_string().contains("end of file"), "{e}");
    }

    #[test]
    fn skip_statement_stops_after_the_semicolon() {
        let mut c = Cursor::new("ROW r1 core 0 0 N DO 10 BY 1 ;\nTRACKS").expect("tokenises");
        c.skip_statement();
        assert!(c.eat("TRACKS"));
    }
}
