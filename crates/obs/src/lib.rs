//! Dependency-free observability for the staged routing pipeline.
//!
//! The container has no crate registry, so this layer is hand-rolled (like
//! `sadp_geom::Rng`) instead of pulling in `tracing`/`log`/`metrics`. It
//! provides three things:
//!
//! 1. **Timing spans and counters** behind the cheap [`Recorder`] trait.
//!    The pipeline wraps each stage in a [`SpanClock`] (or [`timed`]); a
//!    recorder whose [`Recorder::timing`] is `false` never reads the
//!    monotonic clock and a [`NoopRecorder`] makes every call a no-op —
//!    the hot path allocates nothing and pays one virtual call per *net*
//!    (never per A\*-node).
//! 2. **A structured event sink** ([`RouterEvent`]). Events carry only
//!    logical routing facts — never wall-clock times or thread ids — so an
//!    event stream is a pure function of the input. Each band worker of
//!    the sharded driver buffers its events privately
//!    ([`BufferRecorder`]) and the driver replays the buffers **in band
//!    order** ([`BufferRecorder::replay_into`]); the emitted stream is
//!    therefore byte-identical for any `--threads` value.
//! 3. **[`StageProfile`]**: per-stage wall time and invocation counts
//!    (search, commit, recolor, ripup, merge, decompose), aggregated into
//!    the routing report and printable as a table
//!    ([`StageProfile::table`]) or as JSON ([`StageProfile::to_json`])
//!    for `EXPERIMENTS.md`-ready records.
//!
//! Counters saturate instead of wrapping: a profile that has been
//! accumulated across many runs degrades to a pinned `u64::MAX`, never to
//! a small lying number.

use std::fmt;
use std::time::{Duration, Instant};

/// The stages of the routing pipeline that get separate attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Pure pathfinding (`SearchStage`): A\*-expansion over read-only
    /// views, trunk and branches.
    Search,
    /// Scenario scan, proposal staging and the durable commit through the
    /// ledger.
    Commit,
    /// Trial coloring, on-demand flips, and the finalize/cleanup flipping
    /// passes.
    Recolor,
    /// Rip-up bookkeeping: penalty seeding and proposal rollbacks.
    Ripup,
    /// Folding band ledgers into the global state (`merge_band`).
    Merge,
    /// Layout decomposition / verification of the routed result.
    Decompose,
    /// The boundary-net tail: wave scheduling, parallel pre-search and
    /// the canonical-order commit replay of band-straddling nets.
    Boundary,
}

impl Stage {
    /// Every stage, in fixed report order.
    pub const ALL: [Stage; 7] = [
        Stage::Search,
        Stage::Commit,
        Stage::Recolor,
        Stage::Ripup,
        Stage::Merge,
        Stage::Decompose,
        Stage::Boundary,
    ];

    /// Stable lowercase name (used as the JSON key and the table label).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Search => "search",
            Stage::Commit => "commit",
            Stage::Recolor => "recolor",
            Stage::Ripup => "ripup",
            Stage::Merge => "merge",
            Stage::Decompose => "decompose",
            Stage::Boundary => "boundary",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            Stage::Search => 0,
            Stage::Commit => 1,
            Stage::Recolor => 2,
            Stage::Ripup => 3,
            Stage::Merge => 4,
            Stage::Decompose => 5,
            Stage::Boundary => 6,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Accumulated time and invocation count of one stage.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StageStat {
    /// Total wall time spent in the stage.
    pub time: Duration,
    /// Number of span invocations attributed to the stage (saturating).
    pub count: u64,
}

/// Per-stage time and count aggregate of one routing run.
///
/// Counts are deterministic (a function of the input and the schedule,
/// never of the worker count); times are wall-clock measurements and vary
/// run to run. Comparisons that must be thread-count-invariant should use
/// [`StageProfile::counts_only`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StageProfile {
    stats: [StageStat; Stage::ALL.len()],
}

impl StageProfile {
    /// The zero profile.
    #[must_use]
    pub fn new() -> StageProfile {
        StageProfile::default()
    }

    /// The aggregate of one stage.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> StageStat {
        self.stats[stage.index()]
    }

    /// Records one span: `count` invocations totalling `elapsed`.
    pub fn add_span(&mut self, stage: Stage, elapsed: Duration, count: u64) {
        let s = &mut self.stats[stage.index()];
        s.time = s.time.saturating_add(elapsed);
        s.count = s.count.saturating_add(count);
    }

    /// Adds another profile, stage-wise (saturating).
    pub fn accumulate(&mut self, other: &StageProfile) {
        for stage in Stage::ALL {
            let o = other.stage(stage);
            self.add_span(stage, o.time, o.count);
        }
    }

    /// Total time across all stages.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.stats
            .iter()
            .fold(Duration::ZERO, |acc, s| acc.saturating_add(s.time))
    }

    /// True if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stats.iter().all(|s| s.count == 0 && s.time.is_zero())
    }

    /// A copy with every time zeroed — the deterministic part, for
    /// thread-count-invariance comparisons.
    #[must_use]
    pub fn counts_only(&self) -> StageProfile {
        let mut out = StageProfile::new();
        for stage in Stage::ALL {
            out.add_span(stage, Duration::ZERO, self.stage(stage).count);
        }
        out
    }

    /// The `--profile` summary table: one row per stage plus a total.
    #[must_use]
    pub fn table(&self) -> String {
        let total = self.total_time().as_secs_f64().max(f64::MIN_POSITIVE);
        let mut out = String::from("stage      |    time (s) |  share |      count\n");
        out.push_str("-----------+-------------+--------+-----------\n");
        for stage in Stage::ALL {
            let s = self.stage(stage);
            let secs = s.time.as_secs_f64();
            out.push_str(&format!(
                "{:<10} | {:>11.6} | {:>5.1}% | {:>10}\n",
                stage.name(),
                secs,
                100.0 * secs / total,
                s.count
            ));
        }
        out.push_str(&format!(
            "{:<10} | {:>11.6} | 100.0% | {:>10}\n",
            "total",
            self.total_time().as_secs_f64(),
            self.stats
                .iter()
                .fold(0u64, |acc, s| acc.saturating_add(s.count)),
        ));
        out
    }

    /// One-line JSON object
    /// (`{"search":{"seconds":…,"count":…},…}`), the `EXPERIMENTS.md`-ready
    /// record format.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, stage) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = self.stage(*stage);
            out.push_str(&format!(
                "\"{}\":{{\"seconds\":{:.6},\"count\":{}}}",
                stage.name(),
                s.time.as_secs_f64(),
                s.count
            ));
        }
        out.push('}');
        out
    }
}

/// Why a routing attempt was ripped up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RipReason {
    /// Unavoidable type-B cut conflict on the tentative route.
    TypeB,
    /// Constraint-graph rejection: hard odd cycle, infeasible pair, or a
    /// forbidden merge (ablation mode).
    Graph,
    /// Trial coloring could not avoid a realized risk.
    Risk,
}

impl RipReason {
    /// Stable lowercase name used in the JSONL schema.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RipReason::TypeB => "type_b",
            RipReason::Graph => "graph",
            RipReason::Risk => "risk",
        }
    }
}

/// Why a net ended up unrouted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// No path existed at all.
    NoPath,
    /// The rip-up budget was exhausted.
    Exhausted,
    /// The post-routing conflict cleanup gave the net up.
    Cleanup,
    /// The per-net or whole-run search budget ran out before a route was
    /// found.
    BudgetExceeded,
}

impl FailReason {
    /// Stable lowercase name used in the JSONL schema.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FailReason::NoPath => "no_path",
            FailReason::Exhausted => "exhausted",
            FailReason::Cleanup => "cleanup",
            FailReason::BudgetExceeded => "budget_exceeded",
        }
    }
}

/// One structured pipeline event.
///
/// Events carry logical routing facts only — no timestamps, thread ids or
/// pointers — so a trace is deterministic: the same input and config
/// produce the same stream for every worker count. The JSONL schema
/// ([`RouterEvent::to_json_line`]) is part of the public contract and is
/// golden-file tested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterEvent {
    /// A net committed. `attempts` counts searches (1 = first try),
    /// `flipped` whether its trial coloring needed a flip pass.
    NetRouted {
        /// Net id.
        net: u32,
        /// Search attempts used (1 = routed on the first try).
        attempts: u32,
        /// Whether trial coloring triggered a neighborhood flip.
        flipped: bool,
    },
    /// One rip-up-and-re-route iteration.
    NetRipped {
        /// Net id.
        net: u32,
        /// The failed attempt number (0-based).
        attempt: u32,
        /// Why the attempt was rejected.
        reason: RipReason,
    },
    /// A net ended unrouted.
    NetFailed {
        /// Net id.
        net: u32,
        /// Why the net failed.
        reason: FailReason,
    },
    /// One finalize/cleanup color-flipping pass over a layer.
    FlipPass {
        /// Layer index.
        layer: u8,
        /// Dirty components re-flipped by the pass.
        components: u64,
    },
    /// A band worker's ledger was folded into the global state.
    BandMerged {
        /// Band index (ascending merge order).
        band: u32,
        /// Nets the band committed.
        nets: u64,
    },
    /// A band worker panicked (or failed to allocate its private state);
    /// its nets were re-routed on the serial fallback path against the
    /// global merged state. The final output is byte-identical to a run
    /// where the band was never parallelized.
    BandRecovered {
        /// Band index (ascending merge order).
        band: u32,
        /// Nets re-routed serially for the poisoned band.
        nets: u64,
    },
    /// A hard-constraint odd cycle was broken by ripping up the proposing
    /// net (the re-route decomposes the cycle geometrically).
    OddCycleDecomposed {
        /// The proposing net.
        net: u32,
        /// Layer of the offending constraint graph.
        layer: u8,
        /// The other net of the rejected edge.
        other: u32,
    },
    /// One wave of the boundary-net conflict-DAG schedule: `nets` nets
    /// with pairwise-disjoint dependence footprints, pre-searched
    /// concurrently and committed in canonical net order.
    WaveScheduled {
        /// Wave index (ascending commit order).
        wave: u32,
        /// Nets scheduled in the wave.
        nets: u64,
    },
    /// A wave worker panicked pre-searching a boundary net; the net was
    /// re-searched on the serial fallback path. The final output is
    /// byte-identical to a run where the panic never happened.
    WaveRecovered {
        /// Wave index (ascending commit order).
        wave: u32,
        /// The recovered net.
        net: u32,
    },
    /// An ECO edit invalidated the routed nets whose dependence
    /// footprints intersect the edit region. Emitted before the rip-up,
    /// so the id list *is* the re-routing scope proof: nets outside it
    /// are untouched by the edit.
    NetsInvalidated {
        /// Edit sequence number within the ECO session (0-based).
        edit: u32,
        /// Invalidated net ids, ascending.
        nets: Vec<u32>,
    },
    /// An ECO edit finished applying (rip-up + scoped re-route done).
    EditApplied {
        /// Edit sequence number within the ECO session (0-based).
        edit: u32,
        /// What the edit did.
        kind: EditKind,
        /// Nets invalidated by the dependence-radius query.
        invalidated: u64,
        /// Nets re-routed successfully (invalidated survivors plus the
        /// added/moved net itself).
        rerouted: u64,
        /// Nets left unrouted after the edit.
        failed: u64,
    },
}

/// What an ECO edit did, for the `edit_applied` trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditKind {
    /// A net was added to the netlist and routed.
    AddNet,
    /// A net was removed and its occupancy released.
    RemoveNet,
    /// A net's pins were moved and the net re-routed.
    MoveNet,
    /// A rectangular blockage was added.
    AddObstacle,
    /// A previously added blockage was removed.
    RemoveObstacle,
}

impl EditKind {
    /// Stable lowercase name used in the JSONL schema.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EditKind::AddNet => "add_net",
            EditKind::RemoveNet => "remove_net",
            EditKind::MoveNet => "move_net",
            EditKind::AddObstacle => "add_obstacle",
            EditKind::RemoveObstacle => "remove_obstacle",
        }
    }
}

impl RouterEvent {
    /// Stable event-kind name (the `"event"` field of the JSONL schema).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            RouterEvent::NetRouted { .. } => "net_routed",
            RouterEvent::NetRipped { .. } => "net_ripped",
            RouterEvent::NetFailed { .. } => "net_failed",
            RouterEvent::FlipPass { .. } => "flip_pass",
            RouterEvent::BandMerged { .. } => "band_merged",
            RouterEvent::BandRecovered { .. } => "band_recovered",
            RouterEvent::OddCycleDecomposed { .. } => "odd_cycle_decomposed",
            RouterEvent::WaveScheduled { .. } => "wave_scheduled",
            RouterEvent::WaveRecovered { .. } => "wave_recovered",
            RouterEvent::NetsInvalidated { .. } => "nets_invalidated",
            RouterEvent::EditApplied { .. } => "edit_applied",
        }
    }

    /// Serializes the event as one JSON object (no trailing newline).
    ///
    /// Every value is a number, boolean or fixed enum name, so no string
    /// escaping is ever required and the output is byte-stable.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        match self {
            RouterEvent::NetRouted {
                net,
                attempts,
                flipped,
            } => format!(
                "{{\"event\":\"net_routed\",\"net\":{net},\"attempts\":{attempts},\"flipped\":{flipped}}}"
            ),
            RouterEvent::NetRipped {
                net,
                attempt,
                reason,
            } => format!(
                "{{\"event\":\"net_ripped\",\"net\":{net},\"attempt\":{attempt},\"reason\":\"{}\"}}",
                reason.name()
            ),
            RouterEvent::NetFailed { net, reason } => format!(
                "{{\"event\":\"net_failed\",\"net\":{net},\"reason\":\"{}\"}}",
                reason.name()
            ),
            RouterEvent::FlipPass { layer, components } => format!(
                "{{\"event\":\"flip_pass\",\"layer\":{layer},\"components\":{components}}}"
            ),
            RouterEvent::BandMerged { band, nets } => {
                format!("{{\"event\":\"band_merged\",\"band\":{band},\"nets\":{nets}}}")
            }
            RouterEvent::BandRecovered { band, nets } => {
                format!("{{\"event\":\"band_recovered\",\"band\":{band},\"nets\":{nets}}}")
            }
            RouterEvent::OddCycleDecomposed { net, layer, other } => format!(
                "{{\"event\":\"odd_cycle_decomposed\",\"net\":{net},\"layer\":{layer},\"other\":{other}}}"
            ),
            RouterEvent::WaveScheduled { wave, nets } => {
                format!("{{\"event\":\"wave_scheduled\",\"wave\":{wave},\"nets\":{nets}}}")
            }
            RouterEvent::WaveRecovered { wave, net } => {
                format!("{{\"event\":\"wave_recovered\",\"wave\":{wave},\"net\":{net}}}")
            }
            RouterEvent::NetsInvalidated { edit, nets } => {
                let mut ids = String::new();
                for (i, n) in nets.iter().enumerate() {
                    if i > 0 {
                        ids.push(',');
                    }
                    ids.push_str(&n.to_string());
                }
                format!("{{\"event\":\"nets_invalidated\",\"edit\":{edit},\"nets\":[{ids}]}}")
            }
            RouterEvent::EditApplied {
                edit,
                kind,
                invalidated,
                rerouted,
                failed,
            } => format!(
                "{{\"event\":\"edit_applied\",\"edit\":{edit},\"kind\":\"{}\",\"invalidated\":{invalidated},\"rerouted\":{rerouted},\"failed\":{failed}}}",
                kind.name()
            ),
        }
    }
}

/// Serializes an event stream as JSONL (one event per line, trailing
/// newline after each), the `--trace` file format.
#[must_use]
pub fn events_to_jsonl(events: &[RouterEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_json_line());
        out.push('\n');
    }
    out
}

/// One job-lifecycle event of the serving layer (`sadp serve`).
///
/// These sit a level above [`RouterEvent`]: a job *contains* one routing
/// session, whose `RouterEvent` stream is forwarded separately. Like the
/// router events they carry numbers and fixed names only, so no string
/// escaping is ever required and the JSONL schema
/// ([`SessionEvent::to_json_line`]) is byte-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEvent {
    /// A job entered the queue.
    JobSubmitted {
        /// Server-assigned job id.
        job: u64,
        /// Queue priority (lower runs first).
        priority: u8,
        /// Nets in the submitted netlist.
        nets: u64,
    },
    /// A worker started (or restarted) advancing the job's session.
    JobStarted {
        /// Server-assigned job id.
        job: u64,
    },
    /// The job's session crossed a forced checkpoint boundary and its
    /// snapshot was persisted.
    JobCheckpointed {
        /// Server-assigned job id.
        job: u64,
        /// Schedule increments completed so far.
        steps_done: u64,
        /// Total schedule increments.
        steps_total: u64,
    },
    /// A restarted daemon resumed the job from its persisted checkpoint.
    JobResumed {
        /// Server-assigned job id.
        job: u64,
        /// Journaled nets replayed from the checkpoint (searching
        /// skipped).
        nets_replayed: u64,
    },
    /// The job finished; its report is available.
    JobDone {
        /// Server-assigned job id.
        job: u64,
        /// Nets routed.
        routed: u64,
        /// Nets left unrouted.
        failed: u64,
    },
    /// The job was cancelled by a client (a final checkpoint, if any,
    /// stays on disk for a later resume).
    JobCancelled {
        /// Server-assigned job id.
        job: u64,
    },
    /// The job could not run (e.g. its layout failed to parse or its
    /// checkpoint was rejected). The human-readable cause travels in the
    /// protocol response, not in the event stream.
    JobFailed {
        /// Server-assigned job id.
        job: u64,
    },
}

impl SessionEvent {
    /// Stable event-kind name (the `"event"` field of the JSONL schema).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            SessionEvent::JobSubmitted { .. } => "job_submitted",
            SessionEvent::JobStarted { .. } => "job_started",
            SessionEvent::JobCheckpointed { .. } => "job_checkpointed",
            SessionEvent::JobResumed { .. } => "job_resumed",
            SessionEvent::JobDone { .. } => "job_done",
            SessionEvent::JobCancelled { .. } => "job_cancelled",
            SessionEvent::JobFailed { .. } => "job_failed",
        }
    }

    /// Serializes the event as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        match self {
            SessionEvent::JobSubmitted {
                job,
                priority,
                nets,
            } => format!(
                "{{\"event\":\"job_submitted\",\"job\":{job},\"priority\":{priority},\"nets\":{nets}}}"
            ),
            SessionEvent::JobStarted { job } => {
                format!("{{\"event\":\"job_started\",\"job\":{job}}}")
            }
            SessionEvent::JobCheckpointed {
                job,
                steps_done,
                steps_total,
            } => format!(
                "{{\"event\":\"job_checkpointed\",\"job\":{job},\"steps_done\":{steps_done},\"steps_total\":{steps_total}}}"
            ),
            SessionEvent::JobResumed { job, nets_replayed } => format!(
                "{{\"event\":\"job_resumed\",\"job\":{job},\"nets_replayed\":{nets_replayed}}}"
            ),
            SessionEvent::JobDone {
                job,
                routed,
                failed,
            } => format!(
                "{{\"event\":\"job_done\",\"job\":{job},\"routed\":{routed},\"failed\":{failed}}}"
            ),
            SessionEvent::JobCancelled { job } => {
                format!("{{\"event\":\"job_cancelled\",\"job\":{job}}}")
            }
            SessionEvent::JobFailed { job } => {
                format!("{{\"event\":\"job_failed\",\"job\":{job}}}")
            }
        }
    }
}

/// The pipeline's observer. All methods default to no-ops so a recorder
/// implements only what it wants; [`NoopRecorder`] implements nothing.
///
/// The two gates let call sites skip work entirely:
/// [`Recorder::timing`] gates monotonic-clock reads (a [`SpanClock`] on a
/// non-timing recorder never calls [`Instant::now`]), and
/// [`Recorder::enabled`] gates event construction (callers should not
/// build event payloads when it is `false`).
pub trait Recorder {
    /// Whether the recorder wants events (gate event construction on
    /// this).
    fn enabled(&self) -> bool {
        false
    }

    /// Whether the recorder wants span timings (gate clock reads on
    /// this).
    fn timing(&self) -> bool {
        false
    }

    /// Records `count` invocations of `stage` totalling `elapsed`.
    fn span(&mut self, stage: Stage, elapsed: Duration, count: u64) {
        let _ = (stage, elapsed, count);
    }

    /// Records one structured event.
    fn event(&mut self, event: RouterEvent) {
        let _ = event;
    }

    /// The aggregated per-stage profile, if the recorder keeps one.
    fn profile(&self) -> Option<StageProfile> {
        None
    }
}

/// The default recorder: every call is a no-op, nothing is allocated,
/// no clock is ever read.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// A buffering recorder: aggregates spans into a [`StageProfile`] and
/// collects events in arrival order.
///
/// The sharded driver gives each band worker its own `BufferRecorder`
/// and replays the buffers in band order ([`BufferRecorder::replay_into`])
/// so the merged stream is schedule-ordered, not thread-ordered.
#[derive(Debug, Default, Clone)]
pub struct BufferRecorder {
    trace: bool,
    timing: bool,
    /// Aggregated per-stage time and counts.
    pub profile: StageProfile,
    /// Collected events, in arrival order.
    pub events: Vec<RouterEvent>,
}

impl BufferRecorder {
    /// A recorder collecting both events and timings.
    #[must_use]
    pub fn new() -> BufferRecorder {
        BufferRecorder::with_flags(true, true)
    }

    /// A recorder collecting events iff `trace` and timings iff `timing`.
    #[must_use]
    pub fn with_flags(trace: bool, timing: bool) -> BufferRecorder {
        BufferRecorder {
            trace,
            timing,
            profile: StageProfile::new(),
            events: Vec::new(),
        }
    }

    /// Takes the collected events, leaving the buffer empty.
    pub fn take_events(&mut self) -> Vec<RouterEvent> {
        std::mem::take(&mut self.events)
    }

    /// Replays this buffer into another recorder: the profile as one
    /// aggregate span per stage, then every event in arrival order.
    /// Consumes the buffer.
    pub fn replay_into(self, rec: &mut dyn Recorder) {
        for stage in Stage::ALL {
            let s = self.profile.stage(stage);
            if s.count > 0 || !s.time.is_zero() {
                rec.span(stage, s.time, s.count);
            }
        }
        for ev in self.events {
            rec.event(ev);
        }
    }
}

impl Recorder for BufferRecorder {
    fn enabled(&self) -> bool {
        self.trace
    }

    fn timing(&self) -> bool {
        self.timing
    }

    fn span(&mut self, stage: Stage, elapsed: Duration, count: u64) {
        self.profile.add_span(stage, elapsed, count);
    }

    fn event(&mut self, event: RouterEvent) {
        if self.trace {
            self.events.push(event);
        }
    }

    fn profile(&self) -> Option<StageProfile> {
        Some(self.profile)
    }
}

/// A started (or suppressed) stage timer. On a non-timing recorder the
/// clock is never read; [`SpanClock::stop`] still records the invocation
/// count so stage counts stay deterministic whether or not timing is on.
#[derive(Debug)]
#[must_use = "a SpanClock measures nothing until stopped"]
pub struct SpanClock {
    start: Option<Instant>,
}

impl SpanClock {
    /// Starts a span; reads the clock only if the recorder keeps time.
    pub fn start(rec: &dyn Recorder) -> SpanClock {
        SpanClock {
            start: if rec.timing() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Stops the span and attributes it to `stage`.
    pub fn stop(self, rec: &mut dyn Recorder, stage: Stage) {
        let elapsed = self.start.map_or(Duration::ZERO, |t| t.elapsed());
        rec.span(stage, elapsed, 1);
    }
}

/// Times `f` as one span of `stage`, passing the recorder through so the
/// closure can record nested spans and events.
pub fn timed<T>(rec: &mut dyn Recorder, stage: Stage, f: impl FnOnce(&mut dyn Recorder) -> T) -> T {
    let clock = SpanClock::start(rec);
    let out = f(rec);
    clock.stop(rec, stage);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_ignores_everything() {
        let mut rec = NoopRecorder;
        assert!(!rec.enabled());
        assert!(!rec.timing());
        rec.span(Stage::Search, Duration::from_secs(1), 3);
        rec.event(RouterEvent::NetFailed {
            net: 1,
            reason: FailReason::NoPath,
        });
        assert!(rec.profile().is_none());
    }

    #[test]
    fn noop_span_clock_never_reads_the_clock() {
        let rec = NoopRecorder;
        let clock = SpanClock::start(&rec);
        assert!(clock.start.is_none(), "no-op recorder must skip the clock");
    }

    #[test]
    fn spans_aggregate_per_stage() {
        let mut rec = BufferRecorder::new();
        rec.span(Stage::Search, Duration::from_millis(5), 1);
        rec.span(Stage::Search, Duration::from_millis(7), 1);
        rec.span(Stage::Commit, Duration::from_millis(1), 1);
        let p = rec.profile().unwrap();
        assert_eq!(p.stage(Stage::Search).count, 2);
        assert_eq!(p.stage(Stage::Search).time, Duration::from_millis(12));
        assert_eq!(p.stage(Stage::Commit).count, 1);
        assert_eq!(p.stage(Stage::Ripup).count, 0);
    }

    #[test]
    fn span_nesting_attributes_both_levels() {
        // A nested `timed` call must attribute time to both the outer and
        // the inner stage, and the outer total must cover the inner one.
        let mut rec = BufferRecorder::new();
        timed(&mut rec, Stage::Commit, |rec| {
            timed(rec, Stage::Recolor, |_| {
                std::thread::sleep(Duration::from_millis(2));
            });
        });
        let p = rec.profile().unwrap();
        assert_eq!(p.stage(Stage::Commit).count, 1);
        assert_eq!(p.stage(Stage::Recolor).count, 1);
        assert!(p.stage(Stage::Recolor).time >= Duration::from_millis(2));
        assert!(
            p.stage(Stage::Commit).time >= p.stage(Stage::Recolor).time,
            "outer span must cover the nested span"
        );
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut p = StageProfile::new();
        p.add_span(Stage::Merge, Duration::ZERO, u64::MAX - 1);
        p.add_span(Stage::Merge, Duration::ZERO, 5);
        assert_eq!(p.stage(Stage::Merge).count, u64::MAX);
        // Time saturates too.
        p.add_span(Stage::Merge, Duration::MAX, 0);
        p.add_span(Stage::Merge, Duration::MAX, 0);
        assert_eq!(p.stage(Stage::Merge).time, Duration::MAX);
        // Accumulating a saturated profile stays saturated.
        let mut q = StageProfile::new();
        q.accumulate(&p);
        q.accumulate(&p);
        assert_eq!(q.stage(Stage::Merge).count, u64::MAX);
    }

    #[test]
    fn replay_preserves_order_and_aggregates() {
        let mut band0 = BufferRecorder::new();
        band0.span(Stage::Search, Duration::from_millis(3), 2);
        band0.event(RouterEvent::NetRouted {
            net: 1,
            attempts: 1,
            flipped: false,
        });
        let mut band1 = BufferRecorder::new();
        band1.event(RouterEvent::NetFailed {
            net: 9,
            reason: FailReason::Exhausted,
        });
        let mut main = BufferRecorder::new();
        band0.replay_into(&mut main);
        band1.replay_into(&mut main);
        assert_eq!(main.events.len(), 2);
        assert_eq!(main.events[0].kind(), "net_routed");
        assert_eq!(main.events[1].kind(), "net_failed");
        assert_eq!(main.profile.stage(Stage::Search).count, 2);
    }

    #[test]
    fn jsonl_schema_is_stable() {
        let events = [
            RouterEvent::NetRouted {
                net: 7,
                attempts: 2,
                flipped: true,
            },
            RouterEvent::NetRipped {
                net: 7,
                attempt: 0,
                reason: RipReason::TypeB,
            },
            RouterEvent::NetFailed {
                net: 8,
                reason: FailReason::Cleanup,
            },
            RouterEvent::FlipPass {
                layer: 1,
                components: 4,
            },
            RouterEvent::BandMerged { band: 3, nets: 17 },
            RouterEvent::BandRecovered { band: 4, nets: 9 },
            RouterEvent::OddCycleDecomposed {
                net: 5,
                layer: 0,
                other: 2,
            },
            RouterEvent::NetFailed {
                net: 9,
                reason: FailReason::BudgetExceeded,
            },
            RouterEvent::WaveScheduled { wave: 2, nets: 6 },
            RouterEvent::WaveRecovered { wave: 2, net: 11 },
            RouterEvent::NetsInvalidated {
                edit: 0,
                nets: vec![1, 5, 9],
            },
            RouterEvent::NetsInvalidated {
                edit: 1,
                nets: vec![],
            },
            RouterEvent::EditApplied {
                edit: 0,
                kind: EditKind::MoveNet,
                invalidated: 3,
                rerouted: 4,
                failed: 0,
            },
        ];
        let jsonl = events_to_jsonl(&events);
        let expected = concat!(
            "{\"event\":\"net_routed\",\"net\":7,\"attempts\":2,\"flipped\":true}\n",
            "{\"event\":\"net_ripped\",\"net\":7,\"attempt\":0,\"reason\":\"type_b\"}\n",
            "{\"event\":\"net_failed\",\"net\":8,\"reason\":\"cleanup\"}\n",
            "{\"event\":\"flip_pass\",\"layer\":1,\"components\":4}\n",
            "{\"event\":\"band_merged\",\"band\":3,\"nets\":17}\n",
            "{\"event\":\"band_recovered\",\"band\":4,\"nets\":9}\n",
            "{\"event\":\"odd_cycle_decomposed\",\"net\":5,\"layer\":0,\"other\":2}\n",
            "{\"event\":\"net_failed\",\"net\":9,\"reason\":\"budget_exceeded\"}\n",
            "{\"event\":\"wave_scheduled\",\"wave\":2,\"nets\":6}\n",
            "{\"event\":\"wave_recovered\",\"wave\":2,\"net\":11}\n",
            "{\"event\":\"nets_invalidated\",\"edit\":0,\"nets\":[1,5,9]}\n",
            "{\"event\":\"nets_invalidated\",\"edit\":1,\"nets\":[]}\n",
            "{\"event\":\"edit_applied\",\"edit\":0,\"kind\":\"move_net\",\"invalidated\":3,\"rerouted\":4,\"failed\":0}\n",
        );
        assert_eq!(jsonl, expected);
        for kind in [
            EditKind::AddNet,
            EditKind::RemoveNet,
            EditKind::MoveNet,
            EditKind::AddObstacle,
            EditKind::RemoveObstacle,
        ] {
            let ev = RouterEvent::EditApplied {
                edit: 0,
                kind,
                invalidated: 0,
                rerouted: 0,
                failed: 0,
            };
            assert!(ev.to_json_line().contains(&format!("\"{}\"", kind.name())));
        }
    }

    #[test]
    fn session_jsonl_schema_is_stable() {
        let events = [
            SessionEvent::JobSubmitted {
                job: 1,
                priority: 5,
                nets: 120,
            },
            SessionEvent::JobStarted { job: 1 },
            SessionEvent::JobCheckpointed {
                job: 1,
                steps_done: 40,
                steps_total: 124,
            },
            SessionEvent::JobResumed {
                job: 1,
                nets_replayed: 38,
            },
            SessionEvent::JobDone {
                job: 1,
                routed: 118,
                failed: 2,
            },
            SessionEvent::JobCancelled { job: 2 },
            SessionEvent::JobFailed { job: 3 },
        ];
        let expected = [
            "{\"event\":\"job_submitted\",\"job\":1,\"priority\":5,\"nets\":120}",
            "{\"event\":\"job_started\",\"job\":1}",
            "{\"event\":\"job_checkpointed\",\"job\":1,\"steps_done\":40,\"steps_total\":124}",
            "{\"event\":\"job_resumed\",\"job\":1,\"nets_replayed\":38}",
            "{\"event\":\"job_done\",\"job\":1,\"routed\":118,\"failed\":2}",
            "{\"event\":\"job_cancelled\",\"job\":2}",
            "{\"event\":\"job_failed\",\"job\":3}",
        ];
        for (ev, want) in events.iter().zip(expected) {
            assert_eq!(ev.to_json_line(), want);
            // The kind name matches the serialized "event" field.
            assert!(ev.to_json_line().contains(&format!("\"{}\"", ev.kind())));
        }
    }

    #[test]
    fn profile_table_and_json() {
        let mut p = StageProfile::new();
        p.add_span(Stage::Search, Duration::from_millis(250), 10);
        p.add_span(Stage::Merge, Duration::from_millis(50), 2);
        let table = p.table();
        assert!(table.contains("search"));
        assert!(table.contains("0.250000"));
        assert!(table.lines().count() == 2 + Stage::ALL.len() + 1);
        let json = p.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"search\":{\"seconds\":0.250000,\"count\":10}"));
        assert!(json.contains("\"decompose\":{\"seconds\":0.000000,\"count\":0}"));
    }

    #[test]
    fn counts_only_zeroes_times() {
        let mut p = StageProfile::new();
        p.add_span(Stage::Ripup, Duration::from_secs(3), 4);
        let c = p.counts_only();
        assert_eq!(c.stage(Stage::Ripup).count, 4);
        assert_eq!(c.stage(Stage::Ripup).time, Duration::ZERO);
        assert_eq!(c.total_time(), Duration::ZERO);
    }

    #[test]
    fn timed_returns_the_closure_value() {
        let mut rec = BufferRecorder::new();
        let v = timed(&mut rec, Stage::Decompose, |_| 42);
        assert_eq!(v, 42);
        assert_eq!(rec.profile.stage(Stage::Decompose).count, 1);
    }
}
