//! The no-op hot path must not allocate: a routing run with the default
//! recorder pays zero observability overhead on the allocator.
//!
//! Measured with a counting global allocator (the whole test binary runs
//! under it, so each assertion brackets exactly the code under test and
//! the tests run on one thread via the harness's test-ordering; to be
//! safe each test re-reads the counter immediately around the section).

use sadp_obs::{
    events_to_jsonl, FailReason, NoopRecorder, Recorder, RouterEvent, SpanClock, Stage,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn noop_recorder_hot_path_allocates_nothing() {
    let mut rec = NoopRecorder;
    let n = allocations_during(|| {
        for i in 0..10_000u32 {
            let clock = SpanClock::start(&rec);
            clock.stop(&mut rec, Stage::Search);
            rec.span(Stage::Commit, Duration::ZERO, 1);
            if rec.enabled() {
                // Event construction is gated exactly like in the driver;
                // with a no-op recorder this arm never runs.
                rec.event(RouterEvent::NetFailed {
                    net: i,
                    reason: FailReason::NoPath,
                });
            }
        }
    });
    assert_eq!(n, 0, "no-op recorder hot path must not allocate");
}

#[test]
fn event_serialization_does_allocate_as_a_control() {
    // Sanity check that the counter actually observes allocations,
    // so the zero above is meaningful.
    let events = vec![RouterEvent::BandMerged { band: 0, nets: 3 }];
    let n = allocations_during(|| {
        let s = events_to_jsonl(&events);
        assert!(!s.is_empty());
    });
    assert!(n > 0, "control section should have allocated");
}
