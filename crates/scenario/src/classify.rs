//! Geometric classification of dependent rectangle pairs into the 11
//! potential overlay scenarios.

use crate::cost::CostTable;
use crate::kind::ScenarioKind;
use sadp_geom::{DesignRules, Dir, Orientation, TrackRect};
use std::fmt;

/// A classified potential overlay scenario between two rectangles.
///
/// The [`CostTable`] is oriented for the argument order of [`classify`]:
/// `table.entry(Assignment::CS)` is the cost of coloring the *first*
/// argument core and the *second* argument second, regardless of which of
/// the two is the canonical "A" pattern of the scenario definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Which of the 11 scenarios the pair forms.
    pub kind: ScenarioKind,
    /// Per-assignment side-overlay cost, oriented for the caller's order.
    pub table: CostTable,
    /// Facing-overlap length in cells (1 for tip/diagonal scenarios).
    pub overlap_cells: i32,
    /// Whether the canonical "A" pattern is the caller's *second* argument.
    pub swapped: bool,
}

impl Scenario {
    /// Whether this pair constrains the coloring: the [`ScenarioKind`] is
    /// consulted first, but the oriented table gets the final say, so a
    /// nominally non-constraining kind whose table carries costs (e.g. a
    /// future refinement of the point-fragment scenarios) is never
    /// silently dropped by scenario filters.
    #[must_use]
    pub fn is_constraining(&self) -> bool {
        self.kind.is_constraining() || self.table.is_constraining()
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.kind, self.table)
    }
}

/// The facing-boundary kind of one rectangle in an axis-aligned pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Facing {
    /// The long edge faces the partner.
    Side,
    /// The short (line-end) edge faces the partner.
    Tip,
}

fn facing(rect: &TrackRect, gap_axis: Dir) -> Facing {
    match rect.orientation().axis() {
        Some(axis) if axis == gap_axis => Facing::Tip,
        Some(_) => Facing::Side,
        // A 1×1 fragment's facing edge has length w_line: a tip.
        None => Facing::Tip,
    }
}

/// Resolves the wire axis of a fragment, falling back to the partner's axis
/// for `1×1` fragments (and to horizontal if both are points).
fn resolved_axes(a: &TrackRect, b: &TrackRect) -> (Dir, Dir) {
    match (a.orientation(), b.orientation()) {
        (Orientation::Point, Orientation::Point) => (Dir::Horizontal, Dir::Horizontal),
        (Orientation::Point, o) => {
            let d = o.axis().expect("non-point");
            (d, d)
        }
        (o, Orientation::Point) => {
            let d = o.axis().expect("non-point");
            (d, d)
        }
        (oa, ob) => (oa.axis().expect("non-point"), ob.axis().expect("non-point")),
    }
}

/// Classifies a pair of wire-fragment rectangles into a potential overlay
/// scenario (Theorems 2–3).
///
/// Returns `None` when the pair is *independent* (distance ≥ `d_indep`,
/// Theorem 1) or when the rectangles touch or overlap — touching fragments
/// belong to the same rectilinear polygon, which induces no overlay between
/// its own fragments (Theorem 3), so the caller is expected to filter
/// same-net pairs; touching fragments of *different* nets are a spacing
/// violation the router never produces.
///
/// # Example
///
/// ```
/// use sadp_geom::{DesignRules, TrackRect};
/// use sadp_scenario::{classify, ScenarioKind};
///
/// let rules = DesignRules::node_10nm();
/// // Collinear tip-to-tip wires one pitch apart: type 1-b (merge-and-cut).
/// let a = TrackRect::new(0, 0, 4, 0);
/// let b = TrackRect::new(6, 0, 9, 0);
/// let s = classify(&a, &b, &rules).unwrap();
/// assert_eq!(s.kind, ScenarioKind::TwoC); // gap 2: no constraint
/// let b = TrackRect::new(5, 0, 9, 0);
/// assert_eq!(classify(&a, &b, &rules).unwrap().kind, ScenarioKind::OneB);
/// ```
#[must_use]
pub fn classify(a: &TrackRect, b: &TrackRect, rules: &DesignRules) -> Option<Scenario> {
    let (dx, dy) = a.track_gap(b);
    if dx == 0 && dy == 0 {
        return None; // touching or overlapping: same polygon (Theorem 3)
    }
    if !rules.gap_is_dependent(dx, dy) {
        return None; // independent (Theorem 1)
    }

    if dx == 0 || dy == 0 {
        classify_axis_aligned(a, b, dx, dy)
    } else {
        classify_diagonal(a, b, dx, dy)
    }
}

fn classify_axis_aligned(a: &TrackRect, b: &TrackRect, dx: i32, dy: i32) -> Option<Scenario> {
    let gap_axis = if dx > 0 {
        Dir::Horizontal
    } else {
        Dir::Vertical
    };
    let d = dx + dy; // 1 or 2 by the dependence table
    debug_assert!((1..=2).contains(&d));
    let fa = facing(a, gap_axis);
    let fb = facing(b, gap_axis);
    let overlap = match gap_axis {
        Dir::Horizontal => a.overlap_y(b),
        Dir::Vertical => a.overlap_x(b),
    };

    let (kind, swapped) = match (fa, fb, d) {
        (Facing::Side, Facing::Side, 1) => (ScenarioKind::OneA, false),
        (Facing::Side, Facing::Side, _) => (ScenarioKind::TwoA, false),
        (Facing::Tip, Facing::Tip, 1) => (ScenarioKind::OneB, false),
        (Facing::Tip, Facing::Tip, _) => (ScenarioKind::TwoC, false),
        // Mixed: the canonical "A" of types 2-b/2-d is the tip pattern.
        (Facing::Tip, Facing::Side, 1) => (ScenarioKind::TwoB, false),
        (Facing::Side, Facing::Tip, 1) => (ScenarioKind::TwoB, true),
        (Facing::Tip, Facing::Side, _) => (ScenarioKind::TwoD, false),
        (Facing::Side, Facing::Tip, _) => (ScenarioKind::TwoD, true),
    };

    Some(oriented(kind, overlap, swapped))
}

fn classify_diagonal(a: &TrackRect, b: &TrackRect, dx: i32, dy: i32) -> Option<Scenario> {
    debug_assert!(dx > 0 && dy > 0);
    let (axis_a, axis_b) = resolved_axes(a, b);

    if axis_a == axis_b {
        // Parallel diagonal / echelon.
        if dx == 1 && dy == 1 {
            return Some(oriented(ScenarioKind::ThreeA, 1, false));
        }
        let axial = match axis_a {
            Dir::Horizontal => dx,
            Dir::Vertical => dy,
        };
        let kind = if axial >= 2 {
            ScenarioKind::ThreeD
        } else {
            ScenarioKind::ThreeE
        };
        Some(oriented(kind, 1, false))
    } else {
        // Orthogonal diagonal.
        if dx == 1 && dy == 1 {
            return Some(oriented(ScenarioKind::ThreeB, 1, false));
        }
        // Offsets are {1, 2}: the canonical "A" of type 3-c is the pattern
        // whose gap along its own wire axis is 1 (its tip faces the
        // partner's side).
        let axial_a = match axis_a {
            Dir::Horizontal => dx,
            Dir::Vertical => dy,
        };
        let swapped = axial_a != 1;
        Some(oriented(ScenarioKind::ThreeC, 1, swapped))
    }
}

fn oriented(kind: ScenarioKind, overlap: i32, swapped: bool) -> Scenario {
    let canonical = kind.table_with_overlap(overlap);
    Scenario {
        kind,
        table: if swapped {
            canonical.swapped()
        } else {
            canonical
        },
        overlap_cells: overlap,
        swapped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Assignment;
    use sadp_geom::DesignRules;

    fn rules() -> DesignRules {
        DesignRules::node_10nm()
    }

    fn kind_of(a: TrackRect, b: TrackRect) -> Option<ScenarioKind> {
        classify(&a, &b, &rules()).map(|s| s.kind)
    }

    #[test]
    fn independent_and_touching_pairs() {
        let a = TrackRect::new(0, 0, 5, 0);
        // Same track, overlapping: touching.
        assert_eq!(kind_of(a, TrackRect::new(3, 0, 9, 0)), None);
        // Three tracks away: independent.
        assert_eq!(kind_of(a, TrackRect::new(0, 3, 5, 3)), None);
        // Diagonal (2,2): independent (distance exactly d_indep).
        assert_eq!(kind_of(a, TrackRect::new(7, 2, 7, 8)), None);
    }

    #[test]
    fn type_1a_side_by_side() {
        let a = TrackRect::new(0, 0, 5, 0);
        let b = TrackRect::new(1, 1, 7, 1);
        let s = classify(&a, &b, &rules()).unwrap();
        assert_eq!(s.kind, ScenarioKind::OneA);
        assert_eq!(s.overlap_cells, 5);
        assert_eq!(s.table.hard_parity(), Some(true));
        // Vertical variant.
        let a = TrackRect::new(0, 0, 0, 5);
        let b = TrackRect::new(1, 2, 1, 9);
        assert_eq!(kind_of(a, b), Some(ScenarioKind::OneA));
    }

    #[test]
    fn type_1a_single_cell_overlap_is_nonhard() {
        let a = TrackRect::new(0, 0, 5, 0);
        let b = TrackRect::new(5, 1, 9, 1);
        let s = classify(&a, &b, &rules()).unwrap();
        assert_eq!(s.kind, ScenarioKind::OneA);
        assert_eq!(s.overlap_cells, 1);
        assert_eq!(s.table.hard_parity(), None);
    }

    #[test]
    fn type_1b_tip_to_tip() {
        let a = TrackRect::new(0, 0, 4, 0);
        let b = TrackRect::new(5, 0, 9, 0);
        let s = classify(&a, &b, &rules()).unwrap();
        assert_eq!(s.kind, ScenarioKind::OneB);
        assert_eq!(s.table.hard_parity(), Some(false));
        // Vertical stacked.
        let a = TrackRect::new(2, 0, 2, 3);
        let b = TrackRect::new(2, 4, 2, 8);
        assert_eq!(kind_of(a, b), Some(ScenarioKind::OneB));
    }

    #[test]
    fn type_2a_2c_gap_two() {
        let a = TrackRect::new(0, 0, 5, 0);
        assert_eq!(
            kind_of(a, TrackRect::new(0, 2, 5, 2)),
            Some(ScenarioKind::TwoA)
        );
        assert_eq!(
            kind_of(a, TrackRect::new(7, 0, 11, 0)),
            Some(ScenarioKind::TwoC)
        );
    }

    #[test]
    fn type_2b_tip_to_side_orientation() {
        // Vertical wire whose bottom tip faces a horizontal wire's side.
        let h = TrackRect::new(0, 0, 6, 0);
        let v = TrackRect::new(3, 1, 3, 6);
        let s = classify(&h, &v, &rules()).unwrap();
        assert_eq!(s.kind, ScenarioKind::TwoB);
        // Canonical A is the tip pattern (the vertical wire) = caller's b.
        assert!(s.swapped);
        // Cut risk sits on (tip=core, side=second) = caller's SC.
        assert!(s.table.entry(Assignment::SC).has_cut_risk());
        assert!(!s.table.entry(Assignment::CS).has_cut_risk());

        let s2 = classify(&v, &h, &rules()).unwrap();
        assert_eq!(s2.kind, ScenarioKind::TwoB);
        assert!(!s2.swapped);
        assert!(s2.table.entry(Assignment::CS).has_cut_risk());
    }

    #[test]
    fn type_2d_tip_to_side_gap_two() {
        let h = TrackRect::new(0, 0, 6, 0);
        let v = TrackRect::new(3, 2, 3, 6);
        assert_eq!(kind_of(h, v), Some(ScenarioKind::TwoD));
    }

    #[test]
    fn scenario_is_constraining_follows_kind_and_table() {
        // Type 2-d (including the via-pad variant) stays non-constraining
        // for the pairwise coloring: the three-body flanked-pad conflict it
        // can participate in is handled geometrically by the router, not by
        // the cost tables (which are pairwise by construction).
        let h = TrackRect::new(0, 0, 6, 0);
        let p = TrackRect::cell(3, 2);
        let s = classify(&p, &h, &rules()).unwrap();
        assert_eq!(s.kind, ScenarioKind::TwoD);
        assert!(!s.is_constraining());
        // Type 2-b is constraining through its kind.
        let s2 = classify(&TrackRect::cell(3, 1), &h, &rules()).unwrap();
        assert_eq!(s2.kind, ScenarioKind::TwoB);
        assert!(s2.is_constraining());
    }

    #[test]
    fn type_3a_parallel_diagonal() {
        let a = TrackRect::new(0, 0, 4, 0);
        let b = TrackRect::new(5, 1, 9, 1);
        assert_eq!(kind_of(a, b), Some(ScenarioKind::ThreeA));
    }

    #[test]
    fn type_3b_orthogonal_diagonal() {
        let h = TrackRect::new(0, 0, 4, 0);
        let v = TrackRect::new(5, 1, 5, 5);
        assert_eq!(kind_of(h, v), Some(ScenarioKind::ThreeB));
    }

    #[test]
    fn type_3c_orientation() {
        // Horizontal wire, axial (x) gap 1; vertical wire, axial (y) gap 2:
        // the horizontal wire's tip faces the vertical wire's side.
        let h = TrackRect::new(0, 0, 4, 0);
        let v = TrackRect::new(5, 2, 5, 7);
        let s = classify(&h, &v, &rules()).unwrap();
        assert_eq!(s.kind, ScenarioKind::ThreeC);
        assert!(!s.swapped);
        // CS (tip core, side second) is the penalised assignment.
        assert_eq!(s.table.entry(Assignment::CS).overlay_units(), Some(1));
        assert_eq!(s.table.entry(Assignment::SC).overlay_units(), Some(0));

        let s2 = classify(&v, &h, &rules()).unwrap();
        assert_eq!(s2.kind, ScenarioKind::ThreeC);
        assert!(s2.swapped);
        assert_eq!(s2.table.entry(Assignment::SC).overlay_units(), Some(1));
    }

    #[test]
    fn type_3d_3e_echelon() {
        // Horizontal wires: axial (x) gap 2, perpendicular gap 1 -> 3-d.
        let a = TrackRect::new(0, 0, 4, 0);
        let b = TrackRect::new(6, 1, 10, 1);
        assert_eq!(kind_of(a, b), Some(ScenarioKind::ThreeD));
        // Axial gap 1, perpendicular gap 2 -> 3-e.
        let b = TrackRect::new(5, 2, 9, 2);
        assert_eq!(kind_of(a, b), Some(ScenarioKind::ThreeE));
        // Vertical wires mirror the rule.
        let a = TrackRect::new(0, 0, 0, 4);
        let b = TrackRect::new(1, 6, 1, 10);
        assert_eq!(kind_of(a, b), Some(ScenarioKind::ThreeD));
    }

    #[test]
    fn point_fragments_resolve_against_partner() {
        // A 1x1 via landing tip-to-side against a horizontal wire.
        let h = TrackRect::new(0, 0, 6, 0);
        let p = TrackRect::cell(3, 1);
        let s = classify(&h, &p, &rules()).unwrap();
        assert_eq!(s.kind, ScenarioKind::TwoB);
        // Two point fragments tip-to-tip.
        let a = TrackRect::cell(0, 0);
        let b = TrackRect::cell(1, 0);
        assert_eq!(kind_of(a, b), Some(ScenarioKind::OneB));
        // Point diagonal to a wire: parallel diagonal (3-a).
        let b = TrackRect::new(1, 1, 5, 1);
        assert_eq!(kind_of(a, b), Some(ScenarioKind::ThreeA));
    }

    #[test]
    fn classification_is_symmetric_in_kind() {
        // Classifying (a,b) and (b,a) yields the same kind, and tables that
        // are swaps of each other.
        let pairs = [
            (TrackRect::new(0, 0, 5, 0), TrackRect::new(1, 1, 7, 1)),
            (TrackRect::new(0, 0, 4, 0), TrackRect::new(5, 0, 9, 0)),
            (TrackRect::new(0, 0, 6, 0), TrackRect::new(3, 1, 3, 6)),
            (TrackRect::new(0, 0, 4, 0), TrackRect::new(5, 2, 5, 7)),
        ];
        for (a, b) in pairs {
            let s1 = classify(&a, &b, &rules()).unwrap();
            let s2 = classify(&b, &a, &rules()).unwrap();
            assert_eq!(s1.kind, s2.kind);
            assert_eq!(s1.table.swapped(), s2.table);
        }
    }

    #[test]
    fn display_shows_kind_and_table() {
        let a = TrackRect::new(0, 0, 5, 0);
        let b = TrackRect::new(1, 1, 7, 1);
        let s = classify(&a, &b, &rules()).unwrap();
        assert!(s.to_string().contains("type 1-a"));
    }
}
