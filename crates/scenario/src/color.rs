//! Mask colors and pair color assignments (Table I of the paper).

use std::fmt;
use std::ops::Not;

/// The mask color of a pattern in the SADP cut process.
///
/// A *core* pattern is printed directly by the core mask; a *second*
/// pattern is formed by the spacer-bounded gap and trimmed by the cut mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Color {
    /// Main core pattern (directly defined by the core mask).
    Core,
    /// Second pattern (defined by spacers and the cut mask).
    Second,
}

impl Color {
    /// Both colors, in `[Core, Second]` order.
    pub const ALL: [Color; 2] = [Color::Core, Color::Second];

    /// The single-letter notation used by the paper (`C`/`S`).
    #[must_use]
    pub fn letter(self) -> char {
        match self {
            Color::Core => 'C',
            Color::Second => 'S',
        }
    }

    /// The opposite color (the "flip" of the color flipping algorithm).
    #[must_use]
    pub fn flipped(self) -> Color {
        match self {
            Color::Core => Color::Second,
            Color::Second => Color::Core,
        }
    }

    /// Index (0 for core, 1 for second), used for table lookups.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Color::Core => 0,
            Color::Second => 1,
        }
    }
}

impl Not for Color {
    type Output = Color;
    fn not(self) -> Color {
        self.flipped()
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Color::Core => write!(f, "core"),
            Color::Second => write!(f, "second"),
        }
    }
}

/// A color assignment of an *ordered* pattern pair `(A, B)`.
///
/// Follows the paper's notation: `CS` means A is a core pattern and B a
/// second pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Assignment {
    /// A core, B core.
    CC,
    /// A core, B second.
    CS,
    /// A second, B core.
    SC,
    /// A second, B second.
    SS,
}

impl Assignment {
    /// All four assignments, in `[CC, CS, SC, SS]` order.
    pub const ALL: [Assignment; 4] = [
        Assignment::CC,
        Assignment::CS,
        Assignment::SC,
        Assignment::SS,
    ];

    /// Builds the assignment from the colors of A and B.
    #[must_use]
    pub fn from_colors(a: Color, b: Color) -> Assignment {
        match (a, b) {
            (Color::Core, Color::Core) => Assignment::CC,
            (Color::Core, Color::Second) => Assignment::CS,
            (Color::Second, Color::Core) => Assignment::SC,
            (Color::Second, Color::Second) => Assignment::SS,
        }
    }

    /// The color of pattern A.
    #[must_use]
    pub fn color_a(self) -> Color {
        match self {
            Assignment::CC | Assignment::CS => Color::Core,
            Assignment::SC | Assignment::SS => Color::Second,
        }
    }

    /// The color of pattern B.
    #[must_use]
    pub fn color_b(self) -> Color {
        match self {
            Assignment::CC | Assignment::SC => Color::Core,
            Assignment::CS | Assignment::SS => Color::Second,
        }
    }

    /// The assignment with the roles of A and B exchanged (`CS` ↔ `SC`).
    #[must_use]
    pub fn swapped(self) -> Assignment {
        match self {
            Assignment::CS => Assignment::SC,
            Assignment::SC => Assignment::CS,
            other => other,
        }
    }

    /// Whether both patterns have the same color.
    #[must_use]
    pub fn is_same_color(self) -> bool {
        matches!(self, Assignment::CC | Assignment::SS)
    }

    /// Lookup index in `[CC, CS, SC, SS]` order.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Assignment::CC => 0,
            Assignment::CS => 1,
            Assignment::SC => 2,
            Assignment::SS => 3,
        }
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.color_a().letter(), self.color_b().letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involution() {
        for c in Color::ALL {
            assert_eq!(c.flipped().flipped(), c);
            assert_eq!(!c, c.flipped());
        }
    }

    #[test]
    fn assignment_round_trips_colors() {
        for a in Color::ALL {
            for b in Color::ALL {
                let asg = Assignment::from_colors(a, b);
                assert_eq!(asg.color_a(), a);
                assert_eq!(asg.color_b(), b);
            }
        }
    }

    #[test]
    fn swapped_exchanges_roles() {
        assert_eq!(Assignment::CS.swapped(), Assignment::SC);
        assert_eq!(Assignment::CC.swapped(), Assignment::CC);
        for asg in Assignment::ALL {
            assert_eq!(asg.swapped().swapped(), asg);
            assert_eq!(asg.swapped().color_a(), asg.color_b());
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Assignment::CC.to_string(), "CC");
        assert_eq!(Assignment::CS.to_string(), "CS");
        assert_eq!(Assignment::SC.to_string(), "SC");
        assert_eq!(Assignment::SS.to_string(), "SS");
        assert_eq!(Color::Core.to_string(), "core");
    }

    #[test]
    fn indices_are_consistent() {
        for (i, asg) in Assignment::ALL.iter().enumerate() {
            assert_eq!(asg.index(), i);
        }
        assert_eq!(Color::Core.index(), 0);
        assert_eq!(Color::Second.index(), 1);
    }

    #[test]
    fn same_color_predicate() {
        assert!(Assignment::CC.is_same_color());
        assert!(Assignment::SS.is_same_color());
        assert!(!Assignment::CS.is_same_color());
    }
}
