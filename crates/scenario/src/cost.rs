//! Side-overlay cost tables for scenario color assignments.

use crate::color::Assignment;
use std::fmt;

/// The consequence of one color assignment of a scenario pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cost {
    /// The assignment induces `units` units of (nonhard) side overlay; one
    /// unit is `w_line` of overlay length. If `cut_risk` is set, the
    /// assignment additionally produces a pair of cut-defined boundaries
    /// within `d_cut` — a type-A cut conflict — and must be avoided by a
    /// conflict-free router.
    Units {
        /// Total side-overlay length in `w_line` units.
        units: u32,
        /// Whether the assignment risks a type-A cut conflict.
        cut_risk: bool,
    },
    /// The assignment induces a *hard overlay* (side overlay longer than
    /// `w_line`) and is strictly forbidden.
    HardOverlay,
}

impl Cost {
    /// A plain overlay cost with no cut risk.
    #[must_use]
    pub fn units(units: u32) -> Cost {
        Cost::Units {
            units,
            cut_risk: false,
        }
    }

    /// An overlay cost that additionally risks a type-A cut conflict.
    #[must_use]
    pub fn units_with_cut_risk(units: u32) -> Cost {
        Cost::Units {
            units,
            cut_risk: true,
        }
    }

    /// Whether the assignment is strictly forbidden (hard overlay).
    #[must_use]
    pub fn is_forbidden(self) -> bool {
        matches!(self, Cost::HardOverlay)
    }

    /// Whether the assignment risks a type-A cut conflict.
    #[must_use]
    pub fn has_cut_risk(self) -> bool {
        matches!(self, Cost::Units { cut_risk: true, .. })
    }

    /// The finite overlay units, if the assignment is allowed.
    #[must_use]
    pub fn overlay_units(self) -> Option<u32> {
        match self {
            Cost::Units { units, .. } => Some(units),
            Cost::HardOverlay => None,
        }
    }

    /// A single scalar used by coloring optimisation: overlay units, with a
    /// large penalty for cut risks and a prohibitive one for hard overlays.
    ///
    /// The penalties keep the dynamic program total-ordered while ensuring a
    /// solution avoiding every conflict is always preferred when one exists.
    #[must_use]
    pub fn weight(self) -> u64 {
        match self {
            Cost::Units { units, cut_risk } => {
                u64::from(units) + if cut_risk { Cost::CUT_PENALTY } else { 0 }
            }
            Cost::HardOverlay => Cost::HARD_PENALTY,
        }
    }

    /// Penalty weight of a cut-risk assignment.
    pub const CUT_PENALTY: u64 = 100_000;
    /// Penalty weight of a hard-overlay assignment.
    pub const HARD_PENALTY: u64 = 10_000_000_000;
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cost::Units {
                units,
                cut_risk: false,
            } => write!(f, "{units}"),
            Cost::Units {
                units,
                cut_risk: true,
            } => write!(f, "{units}+cut"),
            Cost::HardOverlay => write!(f, "hard"),
        }
    }
}

/// The cost of all four color assignments of an ordered pair `(A, B)`.
///
/// Indexed in `[CC, CS, SC, SS]` order (see [`Assignment::index`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostTable {
    entries: [Cost; 4],
}

impl CostTable {
    /// Builds a table from `[CC, CS, SC, SS]` entries.
    #[must_use]
    pub fn new(entries: [Cost; 4]) -> CostTable {
        CostTable { entries }
    }

    /// A table with no overlay for any assignment.
    #[must_use]
    pub fn zero() -> CostTable {
        CostTable::new([Cost::units(0); 4])
    }

    /// The cost of one assignment.
    #[must_use]
    pub fn entry(&self, asg: Assignment) -> Cost {
        self.entries[asg.index()]
    }

    /// The table with the roles of A and B exchanged.
    #[must_use]
    pub fn swapped(&self) -> CostTable {
        CostTable::new([
            self.entries[Assignment::CC.index()],
            self.entries[Assignment::SC.index()],
            self.entries[Assignment::CS.index()],
            self.entries[Assignment::SS.index()],
        ])
    }

    /// Entry-wise sum of two tables: forbidden beats everything, cut risks
    /// propagate, units add. Used when a pattern pair induces more than one
    /// potential overlay scenario (parallel edges, Fig. 10(b)).
    #[must_use]
    pub fn merged(&self, other: &CostTable) -> CostTable {
        let mut out = [Cost::units(0); 4];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = match (self.entries[i], other.entries[i]) {
                (Cost::HardOverlay, _) | (_, Cost::HardOverlay) => Cost::HardOverlay,
                (
                    Cost::Units {
                        units: u1,
                        cut_risk: r1,
                    },
                    Cost::Units {
                        units: u2,
                        cut_risk: r2,
                    },
                ) => Cost::Units {
                    units: u1 + u2,
                    cut_risk: r1 || r2,
                },
            };
        }
        CostTable::new(out)
    }

    /// Minimum overlay units over the allowed assignments ("min SO" of
    /// Table II). `None` if every assignment is forbidden.
    #[must_use]
    pub fn min_so(&self) -> Option<u32> {
        self.entries.iter().filter_map(|c| c.overlay_units()).min()
    }

    /// Maximum overlay units over the allowed assignments ("max SO" of
    /// Table II).
    #[must_use]
    pub fn max_so(&self) -> Option<u32> {
        self.entries.iter().filter_map(|c| c.overlay_units()).max()
    }

    /// The "stake" of the scenario: how much overlay a bad coloring can add
    /// versus the optimal one. Used as the maximum-spanning-tree edge
    /// weight in the color flipping algorithm; hard/cut entries weigh in
    /// through [`Cost::weight`].
    #[must_use]
    pub fn stake(&self) -> u64 {
        let max = self.entries.iter().map(|c| c.weight()).max().unwrap_or(0);
        let min = self.entries.iter().map(|c| c.weight()).min().unwrap_or(0);
        max - min
    }

    /// Whether at least one assignment is strictly forbidden.
    #[must_use]
    pub fn has_forbidden(&self) -> bool {
        self.entries.iter().any(|c| c.is_forbidden())
    }

    /// Whether the table constrains the coloring at all (some assignment is
    /// worse than another).
    #[must_use]
    pub fn is_constraining(&self) -> bool {
        self.stake() > 0
    }

    /// The parity constraint encoded by the forbidden entries, if the table
    /// is a *hard* same/different constraint:
    ///
    /// * `Some(true)` — the patterns must have **different** colors (CC and
    ///   SS forbidden; type 1-a),
    /// * `Some(false)` — the patterns must have the **same** color (CS and
    ///   SC forbidden; type 1-b),
    /// * `None` — no full parity constraint.
    #[must_use]
    pub fn hard_parity(&self) -> Option<bool> {
        let f = |a: Assignment| self.entry(a).is_forbidden();
        if f(Assignment::CC) && f(Assignment::SS) && !f(Assignment::CS) && !f(Assignment::SC) {
            Some(true)
        } else if f(Assignment::CS) && f(Assignment::SC) && !f(Assignment::CC) && !f(Assignment::SS)
        {
            Some(false)
        } else {
            None
        }
    }
}

impl fmt::Display for CostTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CC={} CS={} SC={} SS={}",
            self.entries[0], self.entries[1], self.entries[2], self.entries[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CostTable {
        CostTable::new([
            Cost::HardOverlay,
            Cost::units(0),
            Cost::units_with_cut_risk(2),
            Cost::units(1),
        ])
    }

    #[test]
    fn entry_lookup() {
        let t = sample();
        assert!(t.entry(Assignment::CC).is_forbidden());
        assert_eq!(t.entry(Assignment::CS).overlay_units(), Some(0));
        assert!(t.entry(Assignment::SC).has_cut_risk());
        assert_eq!(t.entry(Assignment::SS).overlay_units(), Some(1));
    }

    #[test]
    fn swap_exchanges_cs_sc() {
        let t = sample().swapped();
        assert!(t.entry(Assignment::CS).has_cut_risk());
        assert_eq!(t.entry(Assignment::SC).overlay_units(), Some(0));
        assert_eq!(sample().swapped().swapped(), sample());
    }

    #[test]
    fn merge_adds_units_and_propagates_flags() {
        let a = CostTable::new([
            Cost::units(1),
            Cost::units(0),
            Cost::units(2),
            Cost::units(0),
        ]);
        let b = CostTable::new([
            Cost::units(1),
            Cost::HardOverlay,
            Cost::units_with_cut_risk(1),
            Cost::units(0),
        ]);
        let m = a.merged(&b);
        assert_eq!(m.entry(Assignment::CC).overlay_units(), Some(2));
        assert!(m.entry(Assignment::CS).is_forbidden());
        assert!(m.entry(Assignment::SC).has_cut_risk());
        assert_eq!(m.entry(Assignment::SC).overlay_units(), Some(3));
    }

    #[test]
    fn min_max_so_ignore_forbidden() {
        let t = sample();
        assert_eq!(t.min_so(), Some(0));
        assert_eq!(t.max_so(), Some(2));
        let all_hard = CostTable::new([Cost::HardOverlay; 4]);
        assert_eq!(all_hard.min_so(), None);
    }

    #[test]
    fn parity_detection() {
        let diff = CostTable::new([
            Cost::HardOverlay,
            Cost::units(0),
            Cost::units(0),
            Cost::HardOverlay,
        ]);
        assert_eq!(diff.hard_parity(), Some(true));
        let same = CostTable::new([
            Cost::units(0),
            Cost::HardOverlay,
            Cost::HardOverlay,
            Cost::units(0),
        ]);
        assert_eq!(same.hard_parity(), Some(false));
        assert_eq!(sample().hard_parity(), None);
        assert_eq!(CostTable::zero().hard_parity(), None);
    }

    #[test]
    fn stake_and_constraining() {
        assert!(!CostTable::zero().is_constraining());
        let t = CostTable::new([
            Cost::units(1),
            Cost::units(0),
            Cost::units(0),
            Cost::units(0),
        ]);
        assert_eq!(t.stake(), 1);
        assert!(t.is_constraining());
        assert!(sample().stake() >= Cost::HARD_PENALTY - Cost::CUT_PENALTY);
    }

    #[test]
    fn weight_ordering() {
        assert!(Cost::units(3).weight() < Cost::units_with_cut_risk(0).weight());
        assert!(Cost::units_with_cut_risk(100).weight() < Cost::HardOverlay.weight());
    }

    #[test]
    fn display() {
        assert_eq!(Cost::units(2).to_string(), "2");
        assert_eq!(Cost::units_with_cut_risk(1).to_string(), "1+cut");
        assert_eq!(Cost::HardOverlay.to_string(), "hard");
        assert!(sample().to_string().starts_with("CC=hard"));
    }
}
