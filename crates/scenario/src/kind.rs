//! The 11 potential overlay scenarios (Fig. 9) and the six constraint-graph
//! edge kinds (Fig. 11) they map to.

use crate::color::Assignment;
use crate::cost::{Cost, CostTable};
use std::fmt;

/// One of the 11 potential overlay scenarios of Fig. 9.
///
/// Canonical geometries (A, B wire-fragment rectangles; gaps in tracks):
///
/// | Kind | Geometry |
/// |------|----------|
/// | `OneA`   | side-by-side parallel, gap 1, facing overlap ≥ 2 |
/// | `OneB`   | collinear tip-to-tip, gap 1 |
/// | `TwoA`   | side-by-side parallel, gap 2 |
/// | `TwoB`   | orthogonal tip-to-side, gap 1 (A is the tip pattern) |
/// | `TwoC`   | collinear tip-to-tip, gap 2 |
/// | `TwoD`   | orthogonal tip-to-side, gap 2 |
/// | `ThreeA` | diagonal parallel, offset (1, 1) |
/// | `ThreeB` | diagonal orthogonal, offset (1, 1) |
/// | `ThreeC` | diagonal orthogonal, offset (1, 2) (A is the tip pattern) |
/// | `ThreeD` | echelon parallel, axial offset 2, perpendicular offset 1 |
/// | `ThreeE` | echelon parallel, axial offset 1, perpendicular offset 2 |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ScenarioKind {
    /// Type 1-a: hard different-color constraint.
    OneA,
    /// Type 1-b: hard same-color constraint (merge-and-cut).
    OneB,
    /// Type 2-a: prefer same color.
    TwoA,
    /// Type 2-b: at least one unit of side overlay regardless of coloring.
    TwoB,
    /// Type 2-c: never induces side overlay.
    TwoC,
    /// Type 2-d: never induces side overlay.
    TwoD,
    /// Type 3-a: prefer different colors.
    ThreeA,
    /// Type 3-b: prefer both second.
    ThreeB,
    /// Type 3-c: only the CS assignment is penalised.
    ThreeC,
    /// Type 3-d: avoid both-core.
    ThreeD,
    /// Type 3-e: never induces side overlay.
    ThreeE,
}

impl ScenarioKind {
    /// All 11 kinds in paper order.
    pub const ALL: [ScenarioKind; 11] = [
        ScenarioKind::OneA,
        ScenarioKind::OneB,
        ScenarioKind::TwoA,
        ScenarioKind::TwoB,
        ScenarioKind::TwoC,
        ScenarioKind::TwoD,
        ScenarioKind::ThreeA,
        ScenarioKind::ThreeB,
        ScenarioKind::ThreeC,
        ScenarioKind::ThreeD,
        ScenarioKind::ThreeE,
    ];

    /// The paper's name for the scenario (`"1-a"`, `"3-c"`, …).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::OneA => "1-a",
            ScenarioKind::OneB => "1-b",
            ScenarioKind::TwoA => "2-a",
            ScenarioKind::TwoB => "2-b",
            ScenarioKind::TwoC => "2-c",
            ScenarioKind::TwoD => "2-d",
            ScenarioKind::ThreeA => "3-a",
            ScenarioKind::ThreeB => "3-b",
            ScenarioKind::ThreeC => "3-c",
            ScenarioKind::ThreeD => "3-d",
            ScenarioKind::ThreeE => "3-e",
        }
    }

    /// The canonical side-overlay cost table of the scenario, in `w_line`
    /// units, reconstructed from Figs. 24–34 (see DESIGN.md §3.2).
    ///
    /// Type 1-a is overlap-dependent ([`ScenarioKind::table_with_overlap`]);
    /// this method returns its canonical (overlap ≥ 2) form.
    #[must_use]
    pub fn table(self) -> CostTable {
        self.table_with_overlap(2)
    }

    /// The cost table given the facing-overlap length in cells (only
    /// type 1-a depends on it: a one-cell facing overlap produces a
    /// `w_line`-long, SADP-friendly overlay instead of a hard one).
    #[must_use]
    pub fn table_with_overlap(self, overlap_cells: i32) -> CostTable {
        let u = Cost::units;
        let uc = Cost::units_with_cut_risk;
        let h = Cost::HardOverlay;
        match self {
            ScenarioKind::OneA => {
                if overlap_cells <= 1 {
                    CostTable::new([u(1), u(0), u(0), u(1)])
                } else {
                    CostTable::new([h, u(0), u(0), h])
                }
            }
            ScenarioKind::OneB => CostTable::new([u(0), h, h, u(0)]),
            // 2-a CS/SC "may also induce cut conflicts" (Fig. 26); only
            // the 2-b CS combination is a guaranteed type-A conflict the
            // router must forbid (Fig. 15(a) / Fig. 27).
            ScenarioKind::TwoA => CostTable::new([u(0), u(2), u(2), u(0)]),
            ScenarioKind::TwoB => CostTable::new([u(1), uc(2), u(2), u(1)]),
            ScenarioKind::TwoC | ScenarioKind::TwoD | ScenarioKind::ThreeE => CostTable::zero(),
            ScenarioKind::ThreeA | ScenarioKind::ThreeD => CostTable::new([u(1), u(0), u(0), u(0)]),
            ScenarioKind::ThreeB => CostTable::new([u(1), u(1), u(1), u(0)]),
            ScenarioKind::ThreeC => CostTable::new([u(0), u(1), u(0), u(0)]),
        }
    }

    /// Whether the scenario constrains the coloring at all (types 2-c, 2-d
    /// and 3-e never induce side overlays and are not inserted into the
    /// overlay constraint graph).
    #[must_use]
    pub fn is_constraining(self) -> bool {
        !matches!(
            self,
            ScenarioKind::TwoC | ScenarioKind::TwoD | ScenarioKind::ThreeE
        )
    }

    /// Whether the scenario induces side overlay for *every* coloring
    /// (only type 2-b; motivates the γ·T2b term of the A\*-search cost,
    /// eq. (5)).
    #[must_use]
    pub fn is_unavoidable(self) -> bool {
        self.table().min_so().is_some_and(|m| m > 0)
    }

    /// The constraint-graph edge kind (Fig. 11) this scenario maps to.
    #[must_use]
    pub fn edge_kind(self) -> EdgeKind {
        match self {
            ScenarioKind::OneA => EdgeKind::HardDifferent,
            ScenarioKind::OneB => EdgeKind::HardSame,
            ScenarioKind::TwoA | ScenarioKind::TwoB => EdgeKind::PreferSame,
            ScenarioKind::ThreeA | ScenarioKind::ThreeD => EdgeKind::PreferDifferent,
            ScenarioKind::ThreeB => EdgeKind::BothSecond,
            ScenarioKind::ThreeC => EdgeKind::ForbidCs,
            ScenarioKind::TwoC | ScenarioKind::TwoD | ScenarioKind::ThreeE => EdgeKind::None,
        }
    }

    /// The optimal color rule, as printed in Table II.
    #[must_use]
    pub fn color_rule(self) -> &'static str {
        match self.edge_kind() {
            EdgeKind::HardDifferent => "different colors (hard)",
            EdgeKind::HardSame => "same color (hard)",
            EdgeKind::PreferSame => "same color",
            EdgeKind::PreferDifferent => "different colors",
            EdgeKind::BothSecond => "both second",
            EdgeKind::ForbidCs => "avoid CS",
            EdgeKind::None => "any",
        }
    }

    /// The assignments that achieve the minimum side overlay.
    #[must_use]
    pub fn optimal_assignments(self) -> Vec<Assignment> {
        let t = self.table();
        let best = Assignment::ALL
            .iter()
            .map(|&a| t.entry(a).weight())
            .min()
            .expect("four entries");
        Assignment::ALL
            .iter()
            .copied()
            .filter(|&a| t.entry(a).weight() == best)
            .collect()
    }
}

impl fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type {}", self.name())
    }
}

/// The six edge kinds of the overlay constraint graph (Fig. 11), plus
/// `None` for non-constraining scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Fig. 11(a): the vertices must have different colors (hard).
    HardDifferent,
    /// Fig. 11(b): the vertices must have the same color (hard, via a dummy
    /// vertex).
    HardSame,
    /// Fig. 11(c): the vertices should have different colors (nonhard).
    PreferDifferent,
    /// Fig. 11(d): the vertices should have the same color (nonhard).
    PreferSame,
    /// Fig. 11(e): both vertices should be second patterns (nonhard).
    BothSecond,
    /// Fig. 11(f): only the CS assignment is discouraged (nonhard).
    ForbidCs,
    /// The scenario never induces overlay; no edge is inserted.
    None,
}

impl EdgeKind {
    /// Whether this is one of the two hard edge kinds.
    #[must_use]
    pub fn is_hard(self) -> bool {
        matches!(self, EdgeKind::HardDifferent | EdgeKind::HardSame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_scenarios_have_parity() {
        assert_eq!(ScenarioKind::OneA.table().hard_parity(), Some(true));
        assert_eq!(ScenarioKind::OneB.table().hard_parity(), Some(false));
        for k in ScenarioKind::ALL {
            if !matches!(k, ScenarioKind::OneA | ScenarioKind::OneB) {
                assert_eq!(k.table().hard_parity(), None, "{k} should be nonhard");
            }
        }
    }

    #[test]
    fn only_2b_is_unavoidable() {
        for k in ScenarioKind::ALL {
            assert_eq!(
                k.is_unavoidable(),
                k == ScenarioKind::TwoB,
                "{k} unavoidability"
            );
        }
    }

    #[test]
    fn non_constraining_types() {
        for k in [ScenarioKind::TwoC, ScenarioKind::TwoD, ScenarioKind::ThreeE] {
            assert!(!k.is_constraining());
            assert!(!k.table().is_constraining());
            assert_eq!(k.edge_kind(), EdgeKind::None);
        }
        for k in ScenarioKind::ALL {
            if k.is_constraining() {
                assert!(k.table().is_constraining(), "{k}");
            }
        }
    }

    #[test]
    fn one_a_overlap_refinement() {
        // A one-cell facing overlap is a w_line-long (SADP-friendly) overlay.
        let t1 = ScenarioKind::OneA.table_with_overlap(1);
        assert_eq!(t1.hard_parity(), None);
        assert_eq!(t1.entry(Assignment::CC).overlay_units(), Some(1));
        let t2 = ScenarioKind::OneA.table_with_overlap(2);
        assert!(t2.entry(Assignment::CC).is_forbidden());
    }

    #[test]
    fn optimal_assignments_match_rules() {
        assert_eq!(
            ScenarioKind::OneA.optimal_assignments(),
            vec![Assignment::CS, Assignment::SC]
        );
        assert_eq!(
            ScenarioKind::OneB.optimal_assignments(),
            vec![Assignment::CC, Assignment::SS]
        );
        assert_eq!(
            ScenarioKind::ThreeB.optimal_assignments(),
            vec![Assignment::SS]
        );
        assert_eq!(
            ScenarioKind::ThreeC.optimal_assignments(),
            vec![Assignment::CC, Assignment::SC, Assignment::SS]
        );
        // 2-b: one unit is unavoidable; same-color assignments are optimal.
        assert_eq!(
            ScenarioKind::TwoB.optimal_assignments(),
            vec![Assignment::CC, Assignment::SS]
        );
    }

    #[test]
    fn names_and_display() {
        assert_eq!(ScenarioKind::OneA.name(), "1-a");
        assert_eq!(ScenarioKind::ThreeE.name(), "3-e");
        assert_eq!(ScenarioKind::TwoB.to_string(), "type 2-b");
        let names: Vec<_> = ScenarioKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn table_ii_min_so_values() {
        // Table II: all scenarios except 2-b have min SO = 0.
        for k in ScenarioKind::ALL {
            let expect = if k == ScenarioKind::TwoB { 1 } else { 0 };
            assert_eq!(k.table().min_so(), Some(expect), "{k} min SO");
        }
    }
}
