//! Potential-overlay-scenario analysis for SADP cut-process decomposition.
//!
//! This crate implements Section II–III-A of the paper:
//!
//! * [`Color`] / [`Assignment`] — the core/second mask colors of a pattern
//!   pair and the `CC`/`CS`/`SC`/`SS` notation of Table I,
//! * [`ScenarioKind`] — the **11 potential overlay scenarios** of Fig. 9
//!   (types 1-a/1-b, 2-a…2-d, 3-a…3-e), complete for any pair of dependent
//!   rectangles by Theorems 1–3,
//! * [`CostTable`] — the per-assignment side-overlay cost (and cut-conflict
//!   risk) of each scenario, reconstructed from the paper's Figs. 24–34 and
//!   Table II,
//! * [`classify()`](fn@classify) — the geometric classifier mapping a pair of wire-fragment
//!   rectangles to its scenario.
//!
//! # Example
//!
//! ```
//! use sadp_geom::{DesignRules, TrackRect};
//! use sadp_scenario::{classify, Assignment, ScenarioKind};
//!
//! let rules = DesignRules::node_10nm();
//! // Side-by-side parallel wires on adjacent tracks: type 1-a.
//! let a = TrackRect::new(0, 0, 5, 0);
//! let b = TrackRect::new(1, 1, 7, 1);
//! let s = classify(&a, &b, &rules).expect("dependent pair");
//! assert_eq!(s.kind, ScenarioKind::OneA);
//! assert!(s.table.entry(Assignment::CC).is_forbidden());
//! assert!(!s.table.entry(Assignment::CS).is_forbidden());
//! ```

pub mod classify;
pub mod color;
pub mod cost;
pub mod kind;
pub mod table;

pub use classify::{classify, Scenario};
pub use color::{Assignment, Color};
pub use cost::{Cost, CostTable};
pub use kind::{EdgeKind, ScenarioKind};
pub use table::{scenario_summary, ScenarioSummary};
