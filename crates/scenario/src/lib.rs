//! Potential-overlay-scenario analysis for SADP cut-process decomposition.
//!
//! This crate implements Section II–III-A of the paper:
//!
//! * [`Color`] / [`Assignment`] — the core/second mask colors of a pattern
//!   pair and the `CC`/`CS`/`SC`/`SS` notation of Table I,
//! * [`ScenarioKind`] — the **11 potential overlay scenarios** of Fig. 9
//!   (types 1-a/1-b, 2-a…2-d, 3-a…3-e), complete for any pair of dependent
//!   rectangles by Theorems 1–3,
//! * [`CostTable`] — the per-assignment side-overlay cost (and cut-conflict
//!   risk) of each scenario, reconstructed from the paper's Figs. 24–34 and
//!   Table II,
//! * [`classify()`](fn@classify) — the geometric classifier mapping a pair of wire-fragment
//!   rectangles to its scenario.
//!
//! # Example
//!
//! ```
//! use sadp_geom::{DesignRules, TrackRect};
//! use sadp_scenario::{classify, Assignment, ScenarioKind};
//!
//! let rules = DesignRules::node_10nm();
//! // Side-by-side parallel wires on adjacent tracks: type 1-a.
//! let a = TrackRect::new(0, 0, 5, 0);
//! let b = TrackRect::new(1, 1, 7, 1);
//! let s = classify(&a, &b, &rules).expect("dependent pair");
//! assert_eq!(s.kind, ScenarioKind::OneA);
//! assert!(s.table.entry(Assignment::CC).is_forbidden());
//! assert!(!s.table.entry(Assignment::CS).is_forbidden());
//! ```

pub mod classify;
pub mod color;
pub mod cost;
pub mod kind;
pub mod table;

pub use classify::{classify, Scenario};
pub use color::{Assignment, Color};
pub use cost::{Cost, CostTable};
pub use kind::{EdgeKind, ScenarioKind};
pub use table::{scenario_summary, ScenarioSummary};

/// The maximum interaction distance of the scenario analysis, in tracks:
/// two wire fragments farther apart than this (in Chebyshev track gap) can
/// never induce a potential overlay scenario (Theorem 1 — every scenario of
/// Fig. 9 has both gap components within the dependence radius).
///
/// Spatial partitioning (the sharded routing driver) uses this as its halo:
/// two nets whose fragments stay more than this many tracks apart are
/// provably independent and may be routed concurrently.
#[must_use]
pub fn interaction_radius_tracks(rules: &sadp_geom::DesignRules) -> i32 {
    rules.dependence_radius_tracks()
}

#[cfg(test)]
mod interaction_tests {
    use super::*;
    use sadp_geom::{DesignRules, TrackRect};

    #[test]
    fn interaction_radius_bounds_every_scenario() {
        // No pair of fragments with a track gap beyond the radius may
        // classify into a scenario, for both rule sets.
        for rules in [DesignRules::node_10nm(), DesignRules::node_14nm()] {
            let r = interaction_radius_tracks(&rules);
            assert!(r >= 1);
            let a = TrackRect::new(0, 0, 4, 0);
            // Just beyond the radius: independent.
            let b = TrackRect::new(0, r + 1, 4, r + 1);
            assert!(classify(&a, &b, &rules).is_none());
            // On the radius: at least some geometries classify.
            let c = TrackRect::new(0, 1, 4, 1);
            assert!(classify(&a, &c, &rules).is_some());
        }
    }
}
