//! Programmatic regeneration of Table II of the paper.

use crate::kind::ScenarioKind;
use std::fmt;

/// One row of Table II: the color rule and side-overlay bounds of a
/// potential overlay scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSummary {
    /// The scenario.
    pub kind: ScenarioKind,
    /// The optimal color rule.
    pub color_rule: &'static str,
    /// Side overlay (in `w_line` units) when the color rule is followed.
    pub min_so: Option<u32>,
    /// Maximum side overlay over all allowed assignments.
    pub max_so: Option<u32>,
    /// Whether some assignment induces a hard overlay.
    pub has_hard: bool,
    /// Whether some assignment risks a type-A cut conflict.
    pub has_cut_risk: bool,
}

impl fmt::Display for ScenarioSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:5} | {:24} | {:6} | {:6} | {}",
            self.kind.name(),
            self.color_rule,
            self.min_so.map_or("-".into(), |v| v.to_string()),
            self.max_so.map_or("-".into(), |v| v.to_string()),
            if self.has_hard {
                "hard if violated"
            } else if self.has_cut_risk {
                "cut risk"
            } else {
                ""
            }
        )
    }
}

/// Regenerates the rows of Table II for all 11 scenarios.
///
/// # Example
///
/// ```
/// use sadp_scenario::scenario_summary;
/// let rows = scenario_summary();
/// assert_eq!(rows.len(), 11);
/// // Type 2-b is the only scenario with unavoidable side overlay.
/// assert_eq!(rows.iter().filter(|r| r.min_so == Some(1)).count(), 1);
/// ```
#[must_use]
pub fn scenario_summary() -> Vec<ScenarioSummary> {
    ScenarioKind::ALL
        .iter()
        .map(|&kind| {
            let t = kind.table();
            ScenarioSummary {
                kind,
                color_rule: kind.color_rule(),
                min_so: t.min_so(),
                max_so: t.max_so(),
                has_hard: t.has_forbidden(),
                has_cut_risk: crate::color::Assignment::ALL
                    .iter()
                    .any(|&a| t.entry(a).has_cut_risk()),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_rows() {
        let rows = scenario_summary();
        assert_eq!(rows.len(), 11);
        let hard: Vec<_> = rows.iter().filter(|r| r.has_hard).map(|r| r.kind).collect();
        assert_eq!(hard, vec![ScenarioKind::OneA, ScenarioKind::OneB]);
    }

    #[test]
    fn unconstrained_rows_have_zero_so() {
        for row in scenario_summary() {
            if !row.kind.is_constraining() {
                assert_eq!(row.min_so, Some(0));
                assert_eq!(row.max_so, Some(0));
            }
        }
    }

    #[test]
    fn rows_render() {
        for row in scenario_summary() {
            let s = row.to_string();
            assert!(s.contains(row.kind.name()));
        }
    }
}
