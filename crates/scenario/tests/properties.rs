//! Randomized property tests for the scenario classification layer,
//! driven by the deterministic [`Rng`] from `sadp-geom`.

use sadp_geom::{DesignRules, Rng, TrackRect};
use sadp_scenario::{classify, Assignment, Cost, CostTable, ScenarioKind};

const CASES: usize = 512;

fn wire(rng: &mut Rng) -> TrackRect {
    let x = rng.range_i32(0..14);
    let y = rng.range_i32(0..14);
    let len = rng.range_i32(0..9);
    if rng.flip() {
        TrackRect::new(x, y, x + len, y)
    } else {
        TrackRect::new(x, y, x, y + len)
    }
}

fn cost(rng: &mut Rng) -> Cost {
    match rng.index(3) {
        0 => Cost::units(rng.bounded(4) as u32),
        1 => Cost::units_with_cut_risk(rng.bounded(4) as u32),
        _ => Cost::HardOverlay,
    }
}

fn table(rng: &mut Rng) -> CostTable {
    CostTable::new([cost(rng), cost(rng), cost(rng), cost(rng)])
}

/// Translation invariance: shifting both rectangles never changes the
/// classification.
#[test]
fn classification_is_translation_invariant() {
    let mut rng = Rng::seed_from_u64(0x51);
    let rules = DesignRules::node_10nm();
    for _ in 0..CASES {
        let a = wire(&mut rng);
        let b = wire(&mut rng);
        let dx = rng.range_i32(-30..30);
        let dy = rng.range_i32(-30..30);
        let shift = |r: &TrackRect| TrackRect::new(r.x0 + dx, r.y0 + dy, r.x1 + dx, r.y1 + dy);
        let s1 = classify(&a, &b, &rules);
        let s2 = classify(&shift(&a), &shift(&b), &rules);
        match (s1, s2) {
            (Some(x), Some(y)) => {
                assert_eq!(x.kind, y.kind);
                assert_eq!(x.table, y.table);
            }
            (None, None) => {}
            _ => panic!("translation changed classification"),
        }
    }
}

/// 90° rotation maps scenarios to scenarios (the canonical kinds are
/// rotation classes).
#[test]
fn classification_is_rotation_invariant() {
    let mut rng = Rng::seed_from_u64(0x52);
    let rules = DesignRules::node_10nm();
    for _ in 0..CASES {
        let a = wire(&mut rng);
        let b = wire(&mut rng);
        let rot = |r: &TrackRect| TrackRect::new(-r.y1, r.x0, -r.y0, r.x1);
        let s1 = classify(&a, &b, &rules).map(|s| s.kind);
        let s2 = classify(&rot(&a), &rot(&b), &rules).map(|s| s.kind);
        assert_eq!(s1, s2);
    }
}

/// Hard parity appears only for types 1-a and 1-b.
#[test]
fn hard_parity_only_on_type_one() {
    let mut rng = Rng::seed_from_u64(0x53);
    let rules = DesignRules::node_10nm();
    for _ in 0..CASES {
        let a = wire(&mut rng);
        let b = wire(&mut rng);
        if let Some(s) = classify(&a, &b, &rules) {
            match s.table.hard_parity() {
                Some(true) => assert_eq!(s.kind, ScenarioKind::OneA),
                Some(false) => assert_eq!(s.kind, ScenarioKind::OneB),
                None => assert!(
                    !matches!(s.kind, ScenarioKind::OneB),
                    "1-b is always a hard same-color constraint"
                ),
            }
        }
    }
}

/// Table merging is commutative, associative on the weights, and the
/// zero table is the identity.
#[test]
fn table_merge_laws() {
    let mut rng = Rng::seed_from_u64(0x54);
    for _ in 0..CASES {
        let a = table(&mut rng);
        let b = table(&mut rng);
        let c = table(&mut rng);
        assert_eq!(a.merged(&b), b.merged(&a));
        let ab_c = a.merged(&b).merged(&c);
        let a_bc = a.merged(&b.merged(&c));
        assert_eq!(ab_c, a_bc);
        assert_eq!(a.merged(&CostTable::zero()), a);
    }
}

/// Swapping a table twice is the identity, and swapping commutes with
/// merging.
#[test]
fn table_swap_laws() {
    let mut rng = Rng::seed_from_u64(0x55);
    for _ in 0..CASES {
        let a = table(&mut rng);
        let b = table(&mut rng);
        assert_eq!(a.swapped().swapped(), a);
        assert_eq!(a.merged(&b).swapped(), a.swapped().merged(&b.swapped()));
    }
}

/// min_so/max_so bound every allowed entry of the table.
#[test]
fn min_max_bound_entries() {
    let mut rng = Rng::seed_from_u64(0x56);
    for _ in 0..CASES {
        let t = table(&mut rng);
        if let (Some(lo), Some(hi)) = (t.min_so(), t.max_so()) {
            for asg in Assignment::ALL {
                if let Some(u) = t.entry(asg).overlay_units() {
                    assert!(u >= lo && u <= hi);
                }
            }
        } else {
            for asg in Assignment::ALL {
                assert!(t.entry(asg).is_forbidden());
            }
        }
    }
}
