//! Property-based tests for the scenario classification layer.

use proptest::prelude::*;
use sadp_geom::{DesignRules, TrackRect};
use sadp_scenario::{classify, Assignment, Cost, CostTable, ScenarioKind};

fn wire() -> impl Strategy<Value = TrackRect> {
    (0i32..14, 0i32..14, 0i32..9, prop::bool::ANY).prop_map(|(x, y, len, horizontal)| {
        if horizontal {
            TrackRect::new(x, y, x + len, y)
        } else {
            TrackRect::new(x, y, x, y + len)
        }
    })
}

fn cost() -> impl Strategy<Value = Cost> {
    prop_oneof![
        (0u32..4).prop_map(Cost::units),
        (0u32..4).prop_map(Cost::units_with_cut_risk),
        Just(Cost::HardOverlay),
    ]
}

fn table() -> impl Strategy<Value = CostTable> {
    [cost(), cost(), cost(), cost()].prop_map(CostTable::new)
}

proptest! {
    /// Translation invariance: shifting both rectangles never changes the
    /// classification.
    #[test]
    fn classification_is_translation_invariant(
        a in wire(), b in wire(), dx in -30i32..30, dy in -30i32..30,
    ) {
        let rules = DesignRules::node_10nm();
        let shift = |r: &TrackRect| TrackRect::new(r.x0 + dx, r.y0 + dy, r.x1 + dx, r.y1 + dy);
        let s1 = classify(&a, &b, &rules);
        let s2 = classify(&shift(&a), &shift(&b), &rules);
        match (s1, s2) {
            (Some(x), Some(y)) => {
                prop_assert_eq!(x.kind, y.kind);
                prop_assert_eq!(x.table, y.table);
            }
            (None, None) => {}
            _ => prop_assert!(false, "translation changed classification"),
        }
    }

    /// 90° rotation maps scenarios to scenarios (the canonical kinds are
    /// rotation classes).
    #[test]
    fn classification_is_rotation_invariant(a in wire(), b in wire()) {
        let rules = DesignRules::node_10nm();
        let rot = |r: &TrackRect| TrackRect::new(-r.y1, r.x0, -r.y0, r.x1);
        let s1 = classify(&a, &b, &rules).map(|s| s.kind);
        let s2 = classify(&rot(&a), &rot(&b), &rules).map(|s| s.kind);
        prop_assert_eq!(s1, s2);
    }

    /// Hard parity appears only for types 1-a and 1-b.
    #[test]
    fn hard_parity_only_on_type_one(a in wire(), b in wire()) {
        let rules = DesignRules::node_10nm();
        if let Some(s) = classify(&a, &b, &rules) {
            match s.table.hard_parity() {
                Some(true) => prop_assert_eq!(s.kind, ScenarioKind::OneA),
                Some(false) => prop_assert_eq!(s.kind, ScenarioKind::OneB),
                None => prop_assert!(
                    !matches!(s.kind, ScenarioKind::OneB),
                    "1-b is always a hard same-color constraint"
                ),
            }
        }
    }

    /// Table merging is commutative, associative on the weights, and the
    /// zero table is the identity.
    #[test]
    fn table_merge_laws(a in table(), b in table(), c in table()) {
        prop_assert_eq!(a.merged(&b), b.merged(&a));
        let ab_c = a.merged(&b).merged(&c);
        let a_bc = a.merged(&b.merged(&c));
        prop_assert_eq!(ab_c, a_bc);
        prop_assert_eq!(a.merged(&CostTable::zero()), a);
    }

    /// Swapping a table twice is the identity, and swapping commutes with
    /// merging.
    #[test]
    fn table_swap_laws(a in table(), b in table()) {
        prop_assert_eq!(a.swapped().swapped(), a);
        prop_assert_eq!(a.merged(&b).swapped(), a.swapped().merged(&b.swapped()));
    }

    /// min_so/max_so bound every allowed entry of the table.
    #[test]
    fn min_max_bound_entries(t in table()) {
        if let (Some(lo), Some(hi)) = (t.min_so(), t.max_so()) {
            for asg in Assignment::ALL {
                if let Some(u) = t.entry(asg).overlay_units() {
                    prop_assert!(u >= lo && u <= hi);
                }
            }
        } else {
            for asg in Assignment::ALL {
                prop_assert!(t.entry(asg).is_forbidden());
            }
        }
    }
}
