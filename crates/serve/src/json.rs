//! A minimal JSON reader/writer for the wire protocol.
//!
//! The serving layer is deliberately zero-dependency, so this module
//! implements the small JSON subset the protocol needs: objects, arrays,
//! strings (with full escape handling — layout files travel as string
//! values), numbers, booleans and null. Numbers are kept as `f64`;
//! protocol integers (job ids, budgets, counters) are well below 2^53 so
//! the round-trip is exact.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap), which the protocol never
    /// relies on — responses meant to be byte-stable are formatted by
    /// hand, not through this type.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value of `key`, if this is an object that has it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes `s` as a JSON string literal (with the surrounding quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => f.write_str(&escape(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses one JSON value from `text` (ignoring surrounding whitespace).
///
/// # Errors
///
/// A human-readable message naming the byte offset and what was expected.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {}", *pos))
    }
}

/// The longest numeric literal the parser accepts. Every legitimate
/// protocol number — ids, counters, f64 metrics — fits in a fraction of
/// this; a longer digit run is hostile input, not a number.
const MAX_NUMBER_LEN: usize = 64;

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let digits = &b[start..*pos];
    if digits.len() > MAX_NUMBER_LEN {
        return Err(format!(
            "numeric literal of {} bytes at byte {start} exceeds the \
             {MAX_NUMBER_LEN}-byte limit",
            digits.len()
        ));
    }
    // The matched bytes are all ASCII, but stay total anyway: this
    // parser faces raw network bytes and must never panic.
    let Ok(text) = std::str::from_utf8(digits) else {
        return Err(format!("invalid number at byte {start}"));
    };
    match text.parse::<f64>() {
        // `parse::<f64>` maps out-of-range literals like `1e999` to
        // infinity instead of failing; a non-finite number has no JSON
        // representation, so reject it here rather than let it reach
        // `as_u64` (where `inf.fract()` is NaN) or `Display`.
        Ok(n) if n.is_finite() => Ok(Json::Num(n)),
        Ok(_) => Err(format!(
            "numeric literal `{text}` at byte {start} overflows an f64"
        )),
        Err(_) => Err(format!("invalid number `{text}` at byte {start}")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape hex")?;
                        // The protocol only emits \u00xx control escapes;
                        // surrogate pairs are rejected rather than mangled.
                        let c = char::from_u32(code)
                            .ok_or(format!("unsupported \\u{hex} (surrogate?)"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, want) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Num(42.0)),
            ("-3.5", Json::Num(-3.5)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(parse(text).unwrap(), want, "{text}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "plane 3 32 32\nnet \"a\\b\"\tx\u{1}";
        let escaped = escape(original);
        assert_eq!(parse(&escaped).unwrap(), Json::Str(original.into()));
        // A multi-line layout file survives the round trip byte-for-byte.
        let layout = "plane 3 471 40\nnet p0 0:323,30 0:333,39\n";
        assert_eq!(parse(&escape(layout)).unwrap().as_str(), Some(layout),);
    }

    #[test]
    fn objects_and_arrays_parse() {
        let v = parse(r#"{"cmd":"submit","priority":5,"tags":[1,2],"opt":null}"#).unwrap();
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("submit"));
        assert_eq!(v.get("priority").and_then(Json::as_u64), Some(5));
        assert_eq!(
            v.get("tags"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]))
        );
        assert_eq!(v.get("opt"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn display_round_trips() {
        let text = r#"{"a":[1,true,"x\ny"],"b":{"c":null}}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(7.0).to_string(), "7");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn errors_are_actionable() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("[1,2,").is_err());
        assert!(parse("12 34").unwrap_err().contains("trailing"));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(0.0).as_u64(), Some(0));
    }

    #[test]
    fn number_parsing_is_total_on_hostile_literals() {
        // An overlong digit run is an error, never a panic or a stall.
        let huge = "9".repeat(10_000);
        let err = parse(&huge).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
        let err = parse(&format!("{{\"job\":{huge}}}")).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
        // Malformed sign/exponent soups stay errors.
        for text in ["-", "+", ".", "e", "1e", "--5", "1.2.3", "0x10"] {
            assert!(parse(text).is_err(), "{text} should not parse");
        }
        // Literals that overflow f64 to infinity are rejected: the value
        // would have no JSON representation.
        for text in ["1e999", "-1e999", "1e400"] {
            let err = parse(text).unwrap_err();
            assert!(err.contains("overflows"), "{text}: {err}");
        }
        // The biggest in-range protocol integers still parse exactly.
        let max = 2u64.pow(53);
        assert_eq!(parse(&max.to_string()).unwrap().as_u64(), Some(max));
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        // At the cap: a 64-byte literal is fine, 65 is not.
        let at_cap = format!("0.{}", "1".repeat(62));
        assert!(parse(&at_cap).is_ok());
        let over_cap = format!("0.{}", "1".repeat(63));
        assert!(parse(&over_cap).is_err());
    }
}
