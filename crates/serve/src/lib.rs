//! `sadp-serve`: a zero-dependency TCP job daemon for the SADP router.
//!
//! The daemon (`sadp serve`) accepts routing jobs over a newline-delimited
//! JSON protocol, queues them by priority, and advances each one as a
//! resumable [`sadp_core::RoutingSession`] in bounded slices — so many
//! jobs share a small worker pool fairly, every job can be cancelled and
//! later resumed from its `SADPCKPT v2` checkpoint, and a restarted
//! daemon picks queued and in-flight work back up from its state
//! directory with byte-identical results.
//!
//! The crate uses only `std` (`std::net` sockets, `std::thread` workers,
//! a hand-rolled JSON subset in [`json`]) — no external dependencies.
//!
//! - [`protocol`] documents the wire protocol.
//! - [`server`] implements the daemon ([`serve`]) and a line client
//!   ([`Client`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod protocol;
pub mod server;

pub use json::Json;
pub use protocol::Request;
pub use server::{serve, Client, ServeConfig, ServerHandle};
