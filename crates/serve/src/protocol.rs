//! The newline-delimited JSON wire protocol of `sadp serve`.
//!
//! Every client request is one JSON object on one line; every server
//! response is one JSON object on one line. A `subscribe` request
//! switches the connection to streaming mode: the server sends the job's
//! event backlog and then live events as JSONL (the same schema as
//! `sadp route --trace`, plus `job_*` lifecycle events from
//! [`sadp_obs::SessionEvent`]), terminated by one `{"done":true,...}`
//! line carrying the final state — and, for a completed job, the report
//! and stage profile.
//!
//! ## Requests
//!
//! | command | fields | response |
//! |---|---|---|
//! | `ping` | — | `{"ok":true}` |
//! | `submit` | `layout` (text), `priority`? (0-255, lower first, default 100), `threads`?, `node_budget`?, `deadline_ms`? | `{"ok":true,"job":N}` |
//! | `status` | `job` | `{"ok":true,"job":N,"state":...,"steps_done":...,"steps_total":...}` |
//! | `cancel` | `job` | `{"ok":true,"job":N}` |
//! | `resume` | `job` | `{"ok":true,"job":N}` (re-enqueues a cancelled/failed job from its checkpoint) |
//! | `subscribe` | `job` | event stream, then a final `done` line |
//! | `list` | — | `{"ok":true,"jobs":[{...},...]}` |
//! | `edit` | `job`, `script` (edit-script text) | `{"ok":true,"job":N,"results":[...],"routed":...,"failed":...,"undoable":...,"redoable":...}` |
//! | `undo` | `job` | `{"ok":true,"job":N,"routed":...,"failed":...,"undoable":...,"redoable":...}` |
//! | `redo` | `job` | same as `undo` |
//! | `shutdown` | — | `{"ok":true}`; the daemon drains in-flight slices, checkpoints unfinished jobs and exits |
//!
//! Errors are `{"ok":false,"error":"<message>"}`. A submit shed by
//! admission control additionally carries `"overloaded":true`
//! (`{"ok":false,"overloaded":true,"error":...}`) so clients can
//! distinguish "back off and retry" from "your request is wrong".
//!
//! `edit` targets a **completed** job: the daemon lazily opens an ECO
//! session over the job's routed layout ([`sadp_core::eco::EcoSession`])
//! and runs the `script` operations (see
//! [`sadp_core::eco::parse_edit_script`] for the line format). Each
//! `results` entry is either an edit summary
//! (`{"edit":N,"kind":"add_net","invalidated":K,"rerouted":R,"failed":F}`)
//! or `{"op":"undo"}` / `{"op":"redo"}`. `undo`/`redo` requests revert or
//! re-apply one edit. The ECO session lives in memory only — a daemon
//! restart keeps the job's batch result but forgets its edit journal.
//!
//! `node_budget` and `deadline_ms` map onto the router's whole-run
//! budgets ([`RouterConfig::run_node_budget`] /
//! [`RouterConfig::run_deadline_ms`]): a job over budget still finishes
//! with a valid partial result (unrouted nets are reported as
//! `failed_budget`), it is never killed mid-commit.
//!
//! [`RouterConfig::run_node_budget`]: sadp_core::RouterConfig
//! [`RouterConfig::run_deadline_ms`]: sadp_core::RouterConfig

use crate::json::{self, Json};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Enqueue a routing job.
    Submit {
        /// The `.layout` text (plane + blockages + nets).
        layout: String,
        /// Queue priority: lower runs first. Defaults to 100.
        priority: u8,
        /// Worker threads for the job's session (defaults to the
        /// server's per-job default).
        threads: Option<usize>,
        /// Whole-run A*-node budget.
        node_budget: Option<u64>,
        /// Whole-run wall-clock deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Query one job's state and progress.
    Status {
        /// The job id returned by `submit`.
        job: u64,
    },
    /// Stop a job. A running job checkpoints at its next slice boundary.
    Cancel {
        /// The job id.
        job: u64,
    },
    /// Re-enqueue a cancelled (or failed) job; a persisted checkpoint is
    /// picked up automatically.
    Resume {
        /// The job id.
        job: u64,
    },
    /// Stream the job's trace until it reaches a terminal state.
    Subscribe {
        /// The job id.
        job: u64,
    },
    /// Summarize all known jobs.
    List,
    /// Run an ECO edit script against a completed job.
    Edit {
        /// The job id.
        job: u64,
        /// The edit-script text (see `sadp_core::eco::parse_edit_script`).
        script: String,
    },
    /// Revert the most recent edit of a completed job's ECO session.
    Undo {
        /// The job id.
        job: u64,
    },
    /// Re-apply the most recently undone edit.
    Redo {
        /// The job id.
        job: u64,
    },
    /// Drain and exit.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A message suitable for the `{"ok":false,"error":...}` response:
    /// it names the missing/invalid field or the unknown command.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = json::parse(line).map_err(|e| format!("request is not valid JSON: {e}"))?;
        let cmd = v
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("request needs a string `cmd` field")?;
        let job_of = |v: &Json| {
            v.get("job")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("`{cmd}` needs a numeric `job` field"))
        };
        match cmd {
            "ping" => Ok(Request::Ping),
            "submit" => {
                let layout = v
                    .get("layout")
                    .and_then(Json::as_str)
                    .ok_or("`submit` needs a string `layout` field")?
                    .to_string();
                let priority = match v.get("priority") {
                    None => 100,
                    Some(p) => u8::try_from(p.as_u64().ok_or("`priority` must be 0-255")?)
                        .map_err(|_| "`priority` must be 0-255")?,
                };
                let field = |name: &str| -> Result<Option<u64>, String> {
                    match v.get(name) {
                        None | Some(Json::Null) => Ok(None),
                        Some(f) => f
                            .as_u64()
                            .map(Some)
                            .ok_or(format!("`{name}` must be a non-negative integer")),
                    }
                };
                Ok(Request::Submit {
                    layout,
                    priority,
                    threads: field("threads")?.map(|t| t as usize),
                    node_budget: field("node_budget")?,
                    deadline_ms: field("deadline_ms")?,
                })
            }
            "status" => Ok(Request::Status { job: job_of(&v)? }),
            "cancel" => Ok(Request::Cancel { job: job_of(&v)? }),
            "resume" => Ok(Request::Resume { job: job_of(&v)? }),
            "subscribe" => Ok(Request::Subscribe { job: job_of(&v)? }),
            "list" => Ok(Request::List),
            "edit" => Ok(Request::Edit {
                job: job_of(&v)?,
                script: v
                    .get("script")
                    .and_then(Json::as_str)
                    .ok_or("`edit` needs a string `script` field")?
                    .to_string(),
            }),
            "undo" => Ok(Request::Undo { job: job_of(&v)? }),
            "redo" => Ok(Request::Redo { job: job_of(&v)? }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown command `{other}` (expected ping, submit, status, \
                 cancel, resume, subscribe, list, edit, undo, redo, or shutdown)"
            )),
        }
    }

    /// Serializes the request as one protocol line (no trailing newline).
    /// This is the client half of the protocol; the CLI and the tests
    /// use it so requests always parse back.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        match self {
            Request::Ping => "{\"cmd\":\"ping\"}".into(),
            Request::Submit {
                layout,
                priority,
                threads,
                node_budget,
                deadline_ms,
            } => {
                let mut out = format!(
                    "{{\"cmd\":\"submit\",\"layout\":{},\"priority\":{priority}",
                    json::escape(layout)
                );
                if let Some(t) = threads {
                    out.push_str(&format!(",\"threads\":{t}"));
                }
                if let Some(n) = node_budget {
                    out.push_str(&format!(",\"node_budget\":{n}"));
                }
                if let Some(d) = deadline_ms {
                    out.push_str(&format!(",\"deadline_ms\":{d}"));
                }
                out.push('}');
                out
            }
            Request::Status { job } => format!("{{\"cmd\":\"status\",\"job\":{job}}}"),
            Request::Cancel { job } => format!("{{\"cmd\":\"cancel\",\"job\":{job}}}"),
            Request::Resume { job } => format!("{{\"cmd\":\"resume\",\"job\":{job}}}"),
            Request::Subscribe { job } => format!("{{\"cmd\":\"subscribe\",\"job\":{job}}}"),
            Request::List => "{\"cmd\":\"list\"}".into(),
            Request::Edit { job, script } => format!(
                "{{\"cmd\":\"edit\",\"job\":{job},\"script\":{}}}",
                json::escape(script)
            ),
            Request::Undo { job } => format!("{{\"cmd\":\"undo\",\"job\":{job}}}"),
            Request::Redo { job } => format!("{{\"cmd\":\"redo\",\"job\":{job}}}"),
            Request::Shutdown => "{\"cmd\":\"shutdown\"}".into(),
        }
    }
}

/// Formats the standard error response line.
#[must_use]
pub fn error_line(message: &str) -> String {
    format!("{{\"ok\":false,\"error\":{}}}", json::escape(message))
}

/// Formats the admission-control shed response for a submit that found
/// the job queue full: an error line with an extra `"overloaded":true`
/// marker so clients can tell a retryable overload apart from a
/// malformed request.
#[must_use]
pub fn overloaded_line(queued: usize, limit: usize) -> String {
    format!(
        "{{\"ok\":false,\"overloaded\":true,\"error\":{}}}",
        json::escape(&format!(
            "overloaded: {queued} jobs queued (limit {limit}); retry later or raise --max-queue"
        ))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Ping,
            Request::Submit {
                layout: "plane 3 32 32\nnet a 0:2,2 0:20,9\n".into(),
                priority: 7,
                threads: Some(2),
                node_budget: Some(1_000_000),
                deadline_ms: None,
            },
            Request::Submit {
                layout: String::new(),
                priority: 100,
                threads: None,
                node_budget: None,
                deadline_ms: None,
            },
            Request::Status { job: 3 },
            Request::Cancel { job: 4 },
            Request::Resume { job: 4 },
            Request::Subscribe { job: 5 },
            Request::List,
            Request::Edit {
                job: 6,
                script: "add x 0:2,2 0:9,2\nundo\nredo\n".into(),
            },
            Request::Undo { job: 6 },
            Request::Redo { job: 6 },
            Request::Shutdown,
        ];
        for req in requests {
            let line = req.to_json_line();
            assert!(!line.contains('\n'), "one line per request: {line}");
            assert_eq!(Request::parse(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn parse_rejects_malformed_requests_with_actionable_messages() {
        let err = Request::parse("not json").unwrap_err();
        assert!(err.contains("not valid JSON"), "{err}");
        let err = Request::parse("{\"cmd\":\"warp\"}").unwrap_err();
        assert!(err.contains("unknown command `warp`"), "{err}");
        assert!(err.contains("submit"), "lists the valid commands: {err}");
        let err = Request::parse("{\"cmd\":\"submit\"}").unwrap_err();
        assert!(err.contains("`layout`"), "{err}");
        let err = Request::parse("{\"cmd\":\"status\"}").unwrap_err();
        assert!(err.contains("`job`"), "{err}");
        let err = Request::parse("{\"cmd\":\"edit\",\"job\":1}").unwrap_err();
        assert!(err.contains("`script`"), "{err}");
        let err = Request::parse("{\"cmd\":\"undo\"}").unwrap_err();
        assert!(err.contains("`job`"), "{err}");
        let err =
            Request::parse("{\"cmd\":\"submit\",\"layout\":\"x\",\"priority\":999}").unwrap_err();
        assert!(err.contains("0-255"), "{err}");
    }

    #[test]
    fn overloaded_line_parses_and_carries_the_marker() {
        let line = overloaded_line(1024, 1024);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("overloaded").and_then(Json::as_bool), Some(true));
        let msg = v.get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains("1024"), "{msg}");
        assert!(msg.contains("--max-queue"), "{msg}");
    }

    #[test]
    fn error_line_escapes_the_message() {
        let line = error_line("bad \"layout\"\nline 2");
        assert!(!line.contains('\n'));
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("error").and_then(Json::as_str),
            Some("bad \"layout\"\nline 2")
        );
    }
}
