//! The job daemon: a `std::net` TCP server advancing routing sessions.
//!
//! ## Architecture
//!
//! One listener thread accepts connections and spawns one handler thread
//! per connection (requests are line-oriented; see [`crate::protocol`]).
//! A pool of `workers` job threads shares a priority queue of jobs; each
//! worker pops the best ready job, advances its [`RoutingSession`] by one
//! bounded slice ([`ServeConfig::slice_steps`] schedule increments),
//! appends the drained trace events to the job's stream, and re-enqueues
//! the job *behind* its priority class — so several jobs make
//! interleaved progress and one huge job cannot starve the queue.
//!
//! ## Persistence and crash recovery
//!
//! With a [`ServeConfig::state_dir`], every job persists its layout and
//! metadata at submit time and a `SADPCKPT v2` snapshot after every
//! slice (written atomically: temp file + rename). A restarted daemon
//! scans the directory, reloads finished jobs' final results, and
//! re-enqueues unfinished jobs — their journaled prefix is replayed
//! through the commit pipeline (no searching) and routing continues from
//! the last slice boundary. Because sessions only pause *between*
//! canonical commits, the resumed result is byte-identical to an
//! uninterrupted run; the streamed trace after a resume is the suffix
//! from the checkpoint on (replay emits no events).

use crate::json::{self, Json};
use crate::protocol::{error_line, overloaded_line, Request};
use sadp_core::eco::{parse_edit_script, EcoSession, OpOutcome};
use sadp_core::{
    FaultPlan, IoFault, PersistKind, RouterConfig, RoutingReport, RoutingSession, SessionStatus,
    Snapshot, StepBudget,
};
use sadp_grid::io::{read_layout, write_layout};
use sadp_ingest::{ingest_text, Format};
use sadp_obs::SessionEvent;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7463` (port 0 picks a free port;
    /// read the actual one from [`ServerHandle::addr`]).
    pub addr: String,
    /// Job worker threads. `0` makes a queue-only daemon: jobs are
    /// accepted and persisted but never advanced — useful for staging
    /// work to be executed by a later daemon run.
    pub workers: usize,
    /// Directory for job persistence (layouts, metadata, checkpoints,
    /// final results). `None` keeps everything in memory.
    pub state_dir: Option<PathBuf>,
    /// Schedule increments per worker slice. Smaller slices interleave
    /// jobs more fairly and checkpoint more often; larger slices have
    /// less queue overhead.
    pub slice_steps: u64,
    /// Router threads per job when a submit does not specify `threads`.
    pub default_threads: usize,
    /// Hard cap on one request line's byte length (`--max-request-bytes`).
    /// A longer line gets a structured error and the connection is
    /// closed; the oversized tail is never buffered. `0` disables the
    /// cap (not recommended on an untrusted network).
    pub max_request_bytes: usize,
    /// Socket read/write timeout in milliseconds (`--io-timeout-ms`).
    /// A half-written request followed by silence (slow-loris) times
    /// out with a structured error instead of pinning a handler thread
    /// forever; a subscriber that stops draining its stream is
    /// disconnected the same way. `0` disables the timeouts.
    pub io_timeout_ms: u64,
    /// Maximum concurrently served connections (`--max-conns`).
    /// Connection number `max_conns + 1` is answered with a structured
    /// refusal line and closed immediately. Subscribers count. `0`
    /// disables the cap.
    pub max_conns: usize,
    /// Maximum queued (ready-to-run) jobs (`--max-queue`). A submit
    /// past the cap is shed with `{"ok":false,"overloaded":true,...}`
    /// before the layout is even parsed, so a submit flood costs the
    /// daemon almost nothing. `0` disables admission control.
    pub max_queue: usize,
    /// Deterministic persistence-fault injection (`--faults SEED`):
    /// state-dir writes consult [`FaultPlan::io_fault`] and suffer
    /// seeded short writes / ENOSPC-style failures. A recovery
    /// test-bench, not a production mode.
    pub fault_seed: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            state_dir: None,
            slice_steps: 32,
            default_threads: 1,
            max_request_bytes: 16 * 1024 * 1024,
            io_timeout_ms: 10_000,
            max_conns: 256,
            max_queue: 1024,
            fault_seed: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Cancelled,
    Failed,
}

impl JobState {
    fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    fn parse(name: &str) -> Option<JobState> {
        match name {
            "queued" | "running" => Some(JobState::Queued),
            "done" => Some(JobState::Done),
            "cancelled" => Some(JobState::Cancelled),
            "failed" => Some(JobState::Failed),
            _ => None,
        }
    }
}

/// Parses a persisted/wire state string, splitting a `failed:<reason>`
/// qualifier (e.g. `failed:corrupt-state` from the quarantine path) off
/// the base state.
fn parse_state(name: &str) -> Option<(JobState, Option<String>)> {
    if let Some(reason) = name.strip_prefix("failed:") {
        if reason.is_empty() {
            return None;
        }
        return Some((JobState::Failed, Some(reason.to_string())));
    }
    JobState::parse(name).map(|s| (s, None))
}

/// The reason tag of a job whose persisted artifacts were quarantined.
const CORRUPT_STATE: &str = "corrupt-state";

struct Job {
    id: u64,
    priority: u8,
    layout: String,
    threads: usize,
    node_budget: Option<u64>,
    deadline_ms: Option<u64>,
    state: JobState,
    /// Why a failed job failed, when the failure deserves a qualified
    /// state string (`failed:corrupt-state` for quarantined artifacts).
    fail_reason: Option<String>,
    cancel_requested: bool,
    /// The live session, parked between slices. `None` before the first
    /// slice, after a terminal state, and across daemon restarts (the
    /// checkpoint then carries the state).
    session: Option<RoutingSession>,
    /// The latest `SADPCKPT v2` snapshot (mirrored to disk when a state
    /// dir is configured).
    ckpt: Option<String>,
    /// Streamed JSONL lines (router events + `job_*` lifecycle events),
    /// in canonical order. Subscribers read by cursor.
    trace: Vec<String>,
    /// The terminal `{"done":...}` line, once the job finished.
    final_line: Option<String>,
    steps_done: u64,
    steps_total: u64,
    /// The job's ECO session, opened lazily by the first `edit` request
    /// after the job is done. In-memory only: a daemon restart keeps the
    /// batch result but forgets the edit journal.
    eco: Option<Box<EcoSession>>,
    /// An `edit`/`undo`/`redo` holds the session outside the lock while
    /// it routes; concurrent requests are refused instead of queued.
    eco_busy: bool,
}

impl Job {
    fn config(&self) -> RouterConfig {
        let mut config = RouterConfig::paper_defaults();
        config.threads = self.threads.max(1);
        config.run_node_budget = self.node_budget.unwrap_or(0);
        config.run_deadline_ms = self.deadline_ms.unwrap_or(0);
        config
    }

    /// The wire state string: the base state, plus the failure reason
    /// qualifier when there is one (`failed:corrupt-state`).
    fn state_string(&self) -> String {
        match (&self.state, &self.fail_reason) {
            (JobState::Failed, Some(reason)) => format!("failed:{reason}"),
            (state, _) => state.name().to_string(),
        }
    }

    fn status_line(&self) -> String {
        format!(
            "{{\"ok\":true,\"job\":{},\"state\":\"{}\",\"priority\":{},\"steps_done\":{},\"steps_total\":{},\"has_checkpoint\":{}}}",
            self.id,
            self.state_string(),
            self.priority,
            self.steps_done,
            self.steps_total,
            self.ckpt.is_some()
        )
    }
}

struct Core {
    jobs: BTreeMap<u64, Job>,
    /// Ready jobs as `(priority, seq, id)`: lexicographic order gives
    /// strict priority first, then FIFO within a class. Re-enqueued
    /// jobs get a fresh `seq`, which is the round-robin.
    queue: BTreeSet<(u8, u64, u64)>,
    next_id: u64,
    next_seq: u64,
    shutdown: bool,
}

struct Shared {
    core: Mutex<Core>,
    /// Signals workers: queue or shutdown changed.
    work_cv: Condvar,
    /// Signals subscribers: a job's trace or terminal state changed.
    event_cv: Condvar,
    state_dir: Option<PathBuf>,
    slice_steps: u64,
    /// Per-connection limits and admission control (see [`ServeConfig`]).
    max_request_bytes: usize,
    io_timeout: Option<Duration>,
    max_conns: usize,
    max_queue: usize,
    /// Live handler-thread count, for the connection cap.
    conns: AtomicUsize,
    /// Seeded persistence-fault injection, when armed.
    faults: Option<FaultPlan>,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Core> {
        self.core.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn io_fault(&self, job: u64, kind: PersistKind) -> Option<IoFault> {
        self.faults.as_ref().and_then(|p| p.io_fault(job, kind))
    }

    fn enqueue(&self, g: &mut Core, id: u64) {
        let priority = g.jobs[&id].priority;
        let seq = g.next_seq;
        g.next_seq += 1;
        g.queue.insert((priority, seq, id));
        self.work_cv.notify_one();
    }

    fn persist_meta(&self, job: &Job) {
        let Some(dir) = &self.state_dir else { return };
        let mut meta = format!(
            "priority={}\nthreads={}\nstate={}\n",
            job.priority,
            job.threads,
            job.state_string()
        );
        if let Some(n) = job.node_budget {
            meta.push_str(&format!("node_budget={n}\n"));
        }
        if let Some(d) = job.deadline_ms {
            meta.push_str(&format!("deadline_ms={d}\n"));
        }
        log_io_err(atomic_write(
            &dir.join(format!("job-{}.meta", job.id)),
            &meta,
            self.io_fault(job.id, PersistKind::Meta),
        ));
    }

    fn persist_layout(&self, job: &Job) {
        let Some(dir) = &self.state_dir else { return };
        log_io_err(atomic_write(
            &dir.join(format!("job-{}.layout", job.id)),
            &job.layout,
            self.io_fault(job.id, PersistKind::Layout),
        ));
    }

    fn persist_ckpt(&self, job: &Job) {
        let (Some(dir), Some(ckpt)) = (&self.state_dir, &job.ckpt) else {
            return;
        };
        log_io_err(atomic_write(
            &dir.join(format!("job-{}.ckpt", job.id)),
            ckpt,
            self.io_fault(job.id, PersistKind::Checkpoint),
        ));
    }

    fn persist_final(&self, job: &Job) {
        let (Some(dir), Some(line)) = (&self.state_dir, &job.final_line) else {
            return;
        };
        log_io_err(atomic_write(
            &dir.join(format!("job-{}.final", job.id)),
            line,
            self.io_fault(job.id, PersistKind::Final),
        ));
    }
}

/// A persistence failure must not take the daemon down mid-route; the
/// in-memory state stays authoritative and the next slice retries.
fn log_io_err(r: io::Result<()>) {
    if let Err(e) = r {
        eprintln!("sadp serve: state persistence failed: {e}");
    }
}

/// Writes `text` to `path` via a sibling temp file + rename. An armed
/// fault plan can corrupt the write deterministically: `ShortWrite`
/// truncates the payload but still reports success (a torn write that
/// survives a crash — only a read-back can catch it), `Enospc` fails the
/// write outright and leaves the previous file contents intact.
fn atomic_write(path: &Path, text: &str, fault: Option<IoFault>) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    match fault {
        Some(IoFault::Enospc) => {
            return Err(io::Error::other(format!(
                "injected ENOSPC writing {} (fault plan)",
                path.display()
            )));
        }
        Some(IoFault::ShortWrite) => {
            let keep = FaultPlan::short_write_len(text.len());
            std::fs::write(&tmp, &text.as_bytes()[..keep])?;
        }
        None => std::fs::write(&tmp, text)?,
    }
    std::fs::rename(&tmp, path)
}

/// A running daemon. Dropping the handle does NOT stop the server; call
/// [`ServerHandle::shutdown`] (or send the protocol `shutdown` command
/// and [`ServerHandle::join`]).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown, waits for workers to finish their in-flight
    /// slices, and persists a final checkpoint for every unfinished job
    /// before returning.
    pub fn shutdown(mut self) {
        {
            let mut g = self.shared.lock();
            g.shutdown = true;
            self.shared.work_cv.notify_all();
            self.shared.event_cv.notify_all();
        }
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        self.join_inner();
    }

    /// Waits for the daemon to exit (a client must send `shutdown`).
    /// Like [`ServerHandle::shutdown`], persists final checkpoints for
    /// unfinished jobs before returning.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // All threads are gone: park every live session as a checkpoint
        // so a restarted daemon resumes from the last slice boundary.
        let mut g = self.shared.lock();
        let ids: Vec<u64> = g.jobs.keys().copied().collect();
        for id in ids {
            // Never trust the listing across map mutations: a job that
            // vanished (e.g. a concurrent cancel settled it) is skipped,
            // not unwrapped into a panic.
            let Some(job) = g.jobs.get_mut(&id) else {
                eprintln!("sadp serve: job {id} disappeared during shutdown; skipping");
                continue;
            };
            if let Some(session) = job.session.take() {
                job.ckpt = Some(session.snapshot());
                job.state = JobState::Queued;
                let job = &g.jobs[&id];
                self.shared.persist_ckpt(job);
                self.shared.persist_meta(job);
            }
        }
    }
}

/// Starts the daemon: binds the listener, loads persisted jobs from the
/// state directory, and spawns the worker pool.
///
/// # Errors
///
/// Forwards the bind/listen error; a corrupt state directory entry is
/// skipped with a warning rather than refusing to start.
pub fn serve(config: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    if let Some(dir) = &config.state_dir {
        std::fs::create_dir_all(dir)?;
    }
    let shared = Arc::new(Shared {
        core: Mutex::new(Core {
            jobs: BTreeMap::new(),
            queue: BTreeSet::new(),
            next_id: 1,
            next_seq: 0,
            shutdown: false,
        }),
        work_cv: Condvar::new(),
        event_cv: Condvar::new(),
        state_dir: config.state_dir.clone(),
        slice_steps: config.slice_steps.max(1),
        max_request_bytes: config.max_request_bytes,
        io_timeout: (config.io_timeout_ms > 0).then(|| Duration::from_millis(config.io_timeout_ms)),
        max_conns: config.max_conns,
        max_queue: config.max_queue,
        conns: AtomicUsize::new(0),
        faults: config.fault_seed.map(FaultPlan::new),
    });
    if let Some(dir) = &config.state_dir {
        load_state(&shared, dir);
    }

    let mut threads = Vec::new();
    for _ in 0..config.workers {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || worker_loop(&shared)));
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || accept_loop(&listener, &shared)));
    }
    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

/// Reloads jobs from a previous daemon run. Unfinished jobs re-enter
/// the queue; their checkpoint (if any) is picked up on first slice.
///
/// Every persisted artifact is validated before it is trusted: a job
/// with an unreadable/unparsable meta, layout, checkpoint, or final
/// record has its files moved to `state-dir/quarantine/` (with the
/// reason logged) and is surfaced as `failed:corrupt-state` — never
/// silently resurrected with default-empty state. The quarantine
/// verdict itself is persisted, so later restarts remember it without
/// the (moved) artifacts.
fn load_state(shared: &Arc<Shared>, dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut metas: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if let Some(id) = name
            .strip_prefix("job-")
            .and_then(|s| s.strip_suffix(".meta"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            metas.push((id, entry.path()));
        }
    }
    metas.sort_unstable();
    let mut g = shared.lock();
    for (id, meta_path) in metas {
        match load_job(dir, id, &meta_path) {
            Ok(job) => {
                g.next_id = g.next_id.max(id + 1);
                let requeue = job.state == JobState::Queued;
                g.jobs.insert(id, job);
                if requeue {
                    shared.enqueue(&mut g, id);
                }
            }
            Err(reason) => {
                quarantine_job(dir, id, &reason);
                g.next_id = g.next_id.max(id + 1);
                let job = corrupt_state_job(id, &reason);
                // Persist the verdict so the next restart reloads the
                // failed job directly instead of re-quarantining files
                // that are no longer there.
                shared.persist_meta(&job);
                shared.persist_final(&job);
                g.jobs.insert(id, job);
            }
        }
    }
}

/// Loads and validates one persisted job. Any corrupt artifact is an
/// `Err(reason)` — the caller quarantines the job's files.
fn load_job(dir: &Path, id: u64, meta_path: &Path) -> Result<Job, String> {
    let meta = std::fs::read_to_string(meta_path)
        .map_err(|e| format!("meta unreadable: {e}"))?;
    let field = |key: &str| -> Option<String> {
        meta.lines()
            .find_map(|l| l.strip_prefix(&format!("{key}=")))
            .map(str::to_string)
    };
    let state_text = field("state").ok_or("meta has no state field")?;
    let (state, fail_reason) =
        parse_state(&state_text).ok_or(format!("meta has bad state `{state_text}`"))?;
    let mut job = Job {
        id,
        priority: field("priority")
            .and_then(|v| v.parse().ok())
            .unwrap_or(100),
        layout: String::new(),
        threads: field("threads").and_then(|v| v.parse().ok()).unwrap_or(1),
        node_budget: field("node_budget").and_then(|v| v.parse().ok()),
        deadline_ms: field("deadline_ms").and_then(|v| v.parse().ok()),
        state,
        fail_reason,
        cancel_requested: false,
        session: None,
        ckpt: None,
        trace: Vec::new(),
        final_line: None,
        steps_done: 0,
        steps_total: 0,
        eco: None,
        eco_busy: false,
    };
    if job.fail_reason.is_some() {
        // An already-quarantined job: its artifacts were moved on a
        // previous restart; only the verdict meta/final remain.
        job.final_line = std::fs::read_to_string(dir.join(format!("job-{id}.final"))).ok();
        return Ok(job);
    }
    job.layout = match std::fs::read_to_string(dir.join(format!("job-{id}.layout"))) {
        Ok(text) => {
            read_layout(&text).map_err(|e| format!("layout does not parse: {e}"))?;
            text
        }
        Err(e) => return Err(format!("layout unreadable: {e}")),
    };
    job.ckpt = match std::fs::read_to_string(dir.join(format!("job-{id}.ckpt"))) {
        Ok(text) => {
            Snapshot::parse(&text).map_err(|e| format!("checkpoint does not parse: {e}"))?;
            Some(text)
        }
        Err(_) => None,
    };
    job.final_line = match std::fs::read_to_string(dir.join(format!("job-{id}.final"))) {
        Ok(line) => {
            json::parse(line.trim())
                .map_err(|e| format!("final record does not parse: {e}"))?;
            Some(line)
        }
        Err(_) => None,
    };
    Ok(job)
}

/// Moves every artifact of job `id` into `dir/quarantine/`, logging the
/// reason. Rename failures are logged and the file left behind — the
/// job is still registered as `failed:corrupt-state` either way.
fn quarantine_job(dir: &Path, id: u64, reason: &str) {
    let qdir = dir.join("quarantine");
    if let Err(e) = std::fs::create_dir_all(&qdir) {
        eprintln!("sadp serve: cannot create {}: {e}", qdir.display());
        return;
    }
    eprintln!(
        "sadp serve: job {id}: {reason}; moving its artifacts to {}",
        qdir.display()
    );
    for ext in ["layout", "meta", "ckpt", "final"] {
        let name = format!("job-{id}.{ext}");
        let from = dir.join(&name);
        if !from.exists() {
            continue;
        }
        if let Err(e) = std::fs::rename(&from, qdir.join(&name)) {
            eprintln!("sadp serve: quarantine of {name} failed: {e}");
        }
    }
}

/// The in-memory record of a quarantined job: terminal, resumable only
/// by resubmitting the layout, with the reason in its final line.
fn corrupt_state_job(id: u64, reason: &str) -> Job {
    Job {
        id,
        priority: 100,
        layout: String::new(),
        threads: 1,
        node_budget: None,
        deadline_ms: None,
        state: JobState::Failed,
        fail_reason: Some(CORRUPT_STATE.to_string()),
        cancel_requested: false,
        session: None,
        ckpt: None,
        trace: Vec::new(),
        final_line: Some(format!(
            "{{\"done\":true,\"job\":{id},\"state\":\"failed:{CORRUPT_STATE}\",\"error\":{}}}",
            json::escape(&format!(
                "persisted state was corrupt ({reason}); artifacts quarantined — resubmit the layout"
            ))
        )),
        steps_done: 0,
        steps_total: 0,
        eco: None,
        eco_busy: false,
    }
}

/// Decrements the live-connection count when a handler thread exits,
/// however it exits.
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.conns.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.lock().shutdown {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Admission check before spawning: connection max_conns + 1 is
        // answered with a structured refusal and closed. The refusal
        // write gets a short timeout of its own so a client that never
        // reads cannot wedge the accept loop.
        let active = shared.conns.fetch_add(1, Ordering::SeqCst) + 1;
        if shared.max_conns > 0 && active > shared.max_conns {
            shared.conns.fetch_sub(1, Ordering::SeqCst);
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let _ = writeln!(
                stream,
                "{}",
                error_line(&format!(
                    "too many connections ({} active, limit {}); retry later",
                    active - 1,
                    shared.max_conns
                ))
            );
            continue;
        }
        let shared = Arc::clone(shared);
        // Handler threads are detached: they exit when their client
        // disconnects, misbehaves (oversized line, timeout), or the
        // daemon shuts down.
        std::thread::spawn(move || {
            let _guard = ConnGuard(Arc::clone(&shared));
            let _ = handle_conn(stream, &shared);
        });
    }
}

/// One bounded, timeout-aware request-line read.
enum LineRead {
    /// A complete line (CR/LF stripped).
    Line(String),
    /// Clean end of stream (also: EOF after a partial line — the client
    /// hung up mid-request, nobody is left to answer).
    Eof,
    /// The line exceeded the byte cap before a newline arrived.
    TooLong,
    /// The line is not valid UTF-8.
    NotUtf8,
    /// The socket read timed out (slow-loris or idle keep-alive).
    TimedOut,
    /// Any other socket error.
    Failed(io::Error),
}

/// Reads one `\n`-terminated line, buffering at most `max` bytes. Unlike
/// `BufRead::read_line`, a hostile line can never grow the buffer past
/// the cap, and a read timeout surfaces as [`LineRead::TimedOut`]
/// instead of an opaque error. `max == 0` disables the cap.
fn read_request_line(reader: &mut BufReader<TcpStream>, max: usize) -> LineRead {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                return LineRead::TimedOut;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return LineRead::Failed(e),
        };
        if chunk.is_empty() {
            return LineRead::Eof;
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(chunk.len());
        if max > 0 && buf.len() + take > max {
            // Consume what we peeked so the refusal write goes out on a
            // socket with no pending input, then stop reading: the
            // connection is closed, never drained.
            let consumed = chunk.len();
            reader.consume(consumed);
            return LineRead::TooLong;
        }
        buf.extend_from_slice(&chunk[..take]);
        let consumed = take + usize::from(newline.is_some());
        reader.consume(consumed);
        if newline.is_some() {
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return match String::from_utf8(buf) {
                Ok(line) => LineRead::Line(line),
                Err(_) => LineRead::NotUtf8,
            };
        }
    }
}

fn handle_conn(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    // Slow-loris defense: both directions time out. A half-written
    // request followed by silence gets a structured error and the
    // connection closed; a subscriber that stops draining its stream is
    // disconnected rather than pinning a handler thread forever.
    if let Some(timeout) = shared.io_timeout {
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_write_timeout(Some(timeout));
    }
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    loop {
        let line = match read_request_line(&mut reader, shared.max_request_bytes) {
            LineRead::Line(line) => line,
            LineRead::Eof => return Ok(()),
            LineRead::TooLong => {
                writeln!(
                    out,
                    "{}",
                    error_line(&format!(
                        "request line exceeds {} bytes; closing the connection \
                         (raise --max-request-bytes for larger layouts)",
                        shared.max_request_bytes
                    ))
                )?;
                // Drain whatever oversized tail already arrived before
                // closing: a close with unread bytes in the receive
                // buffer turns into an RST that can destroy the error
                // line before the client reads it. Non-blocking, so a
                // client that keeps streaming can't pin this thread.
                let _ = out.set_nonblocking(true);
                let mut sink = [0u8; 8192];
                while matches!(reader.get_mut().read(&mut sink), Ok(n) if n > 0) {}
                return Ok(());
            }
            LineRead::NotUtf8 => {
                writeln!(
                    out,
                    "{}",
                    error_line("request is not valid UTF-8; closing the connection")
                )?;
                return Ok(());
            }
            LineRead::TimedOut => {
                writeln!(
                    out,
                    "{}",
                    error_line(&format!(
                        "timed out waiting for a complete request line ({} ms); \
                         closing the connection",
                        shared.io_timeout.map_or(0, |t| t.as_millis() as u64)
                    ))
                )?;
                return Ok(());
            }
            LineRead::Failed(e) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        let req = match Request::parse(&line) {
            Ok(req) => req,
            Err(e) => {
                writeln!(out, "{}", error_line(&e))?;
                continue;
            }
        };
        match req {
            Request::Ping => writeln!(out, "{{\"ok\":true}}")?,
            Request::Submit {
                layout,
                priority,
                threads,
                node_budget,
                deadline_ms,
            } => {
                let resp = submit(shared, layout, priority, threads, node_budget, deadline_ms);
                writeln!(out, "{resp}")?;
            }
            Request::Status { job } => {
                let g = shared.lock();
                let resp = match g.jobs.get(&job) {
                    Some(j) => j.status_line(),
                    None => error_line(&format!("no such job {job}")),
                };
                drop(g);
                writeln!(out, "{resp}")?;
            }
            Request::Cancel { job } => writeln!(out, "{}", cancel(shared, job))?,
            Request::Resume { job } => writeln!(out, "{}", resume(shared, job))?,
            Request::List => {
                let g = shared.lock();
                let jobs: Vec<String> = g
                    .jobs
                    .values()
                    .map(|j| {
                        format!(
                            "{{\"job\":{},\"state\":\"{}\",\"priority\":{},\"steps_done\":{},\"steps_total\":{}}}",
                            j.id,
                            j.state_string(),
                            j.priority,
                            j.steps_done,
                            j.steps_total
                        )
                    })
                    .collect();
                drop(g);
                writeln!(out, "{{\"ok\":true,\"jobs\":[{}]}}", jobs.join(","))?;
            }
            Request::Edit { job, script } => {
                writeln!(out, "{}", eco_op(shared, job, &EcoOp::Edit(script)))?;
            }
            Request::Undo { job } => writeln!(out, "{}", eco_op(shared, job, &EcoOp::Undo))?,
            Request::Redo { job } => writeln!(out, "{}", eco_op(shared, job, &EcoOp::Redo))?,
            Request::Subscribe { job } => {
                return subscribe(shared, job, out);
            }
            Request::Shutdown => {
                writeln!(out, "{{\"ok\":true}}")?;
                {
                    let mut g = shared.lock();
                    g.shutdown = true;
                    shared.work_cv.notify_all();
                    shared.event_cv.notify_all();
                }
                // The accept loop is blocked in `incoming()`; this
                // connection's server-side local address IS the listen
                // address, so a dummy connect wakes it to observe the
                // shutdown flag.
                if let Ok(addr) = out.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                return Ok(());
            }
        }
    }
}

fn submit(
    shared: &Arc<Shared>,
    layout: String,
    priority: u8,
    threads: Option<usize>,
    node_budget: Option<u64>,
    deadline_ms: Option<u64>,
) -> String {
    // Admission control first, BEFORE the layout parse: shedding a
    // submit during overload must cost the daemon a queue-length check,
    // not a full parse of however many megabytes the flood is pushing.
    {
        let g = shared.lock();
        if g.shutdown {
            return error_line("daemon is shutting down");
        }
        if shared.max_queue > 0 && g.queue.len() >= shared.max_queue {
            return overloaded_line(g.queue.len(), shared.max_queue);
        }
    }
    // Validate the layout up front so a typo'd submit fails on the spot
    // with the parser's line-numbered message, not later in the queue.
    // Non-native formats (Specctra DSN, DEF) are canonicalised to
    // layout text at the door, so queued and persisted jobs are always
    // the native format and the resume/checkpoint paths stay untouched.
    // A DEF whose components need a LEF library is rejected here: the
    // daemon receives bare text and has no sidecar file to consult.
    let (layout, nets) = match ingest_text(&layout, None, None) {
        Ok(imported) => {
            let nets = imported.netlist.len() as u64;
            let text = if imported.format == Format::Layout {
                layout
            } else {
                write_layout(&imported.plane, &imported.netlist)
            };
            (text, nets)
        }
        Err(e) => return error_line(&format!("layout rejected: {e}")),
    };
    let mut g = shared.lock();
    if g.shutdown {
        return error_line("daemon is shutting down");
    }
    // Re-check under the lock: the queue may have filled while we were
    // parsing (admission is advisory outside the lock, binding inside).
    if shared.max_queue > 0 && g.queue.len() >= shared.max_queue {
        return overloaded_line(g.queue.len(), shared.max_queue);
    }
    let id = g.next_id;
    g.next_id += 1;
    let mut job = Job {
        id,
        priority,
        layout,
        threads: threads.unwrap_or(0),
        node_budget,
        deadline_ms,
        state: JobState::Queued,
        fail_reason: None,
        cancel_requested: false,
        session: None,
        ckpt: None,
        trace: Vec::new(),
        final_line: None,
        steps_done: 0,
        steps_total: 0,
        eco: None,
        eco_busy: false,
    };
    if job.threads == 0 {
        job.threads = 1;
    }
    job.trace.push(
        SessionEvent::JobSubmitted {
            job: id,
            priority,
            nets,
        }
        .to_json_line(),
    );
    shared.persist_layout(&job);
    shared.persist_meta(&job);
    g.jobs.insert(id, job);
    shared.enqueue(&mut g, id);
    shared.event_cv.notify_all();
    format!("{{\"ok\":true,\"job\":{id}}}")
}

fn cancel(shared: &Arc<Shared>, id: u64) -> String {
    let mut g = shared.lock();
    let Some(job) = g.jobs.get_mut(&id) else {
        return error_line(&format!("no such job {id}"));
    };
    match job.state {
        JobState::Done | JobState::Failed | JobState::Cancelled => {
            return error_line(&format!(
                "job {id} is already {} and cannot be cancelled",
                job.state.name()
            ));
        }
        JobState::Queued => {
            // Not started (or parked between slices): settle it here.
            job.state = JobState::Cancelled;
            if let Some(session) = job.session.take() {
                job.ckpt = Some(session.snapshot());
            }
            job.trace
                .push(SessionEvent::JobCancelled { job: id }.to_json_line());
            job.final_line = Some(format!(
                "{{\"done\":true,\"job\":{id},\"state\":\"cancelled\"}}"
            ));
            let job = &g.jobs[&id];
            shared.persist_ckpt(job);
            shared.persist_meta(job);
            shared.persist_final(job);
            g.queue.retain(|&(_, _, j)| j != id);
            shared.event_cv.notify_all();
        }
        JobState::Running => {
            // A worker owns the session; it cancels at the slice
            // boundary and writes the final checkpoint.
            job.cancel_requested = true;
        }
    }
    format!("{{\"ok\":true,\"job\":{id}}}")
}

fn resume(shared: &Arc<Shared>, id: u64) -> String {
    let mut g = shared.lock();
    let Some(job) = g.jobs.get_mut(&id) else {
        return error_line(&format!("no such job {id}"));
    };
    match job.state {
        JobState::Cancelled | JobState::Failed => {
            if job.fail_reason.as_deref() == Some(CORRUPT_STATE) {
                // Nothing left to resume: the layout itself was moved to
                // quarantine. Only a fresh submit can revive this work.
                return error_line(&format!(
                    "job {id} failed with corrupt persisted state; its artifacts \
                     were quarantined — resubmit the layout"
                ));
            }
            job.state = JobState::Queued;
            job.fail_reason = None;
            job.cancel_requested = false;
            job.final_line = None;
            if let Some(dir) = &shared.state_dir {
                let _ = std::fs::remove_file(dir.join(format!("job-{id}.final")));
            }
            shared.persist_meta(&g.jobs[&id]);
            shared.enqueue(&mut g, id);
            format!("{{\"ok\":true,\"job\":{id}}}")
        }
        JobState::Queued | JobState::Running => {
            format!("{{\"ok\":true,\"job\":{id}}}")
        }
        JobState::Done => error_line(&format!("job {id} is already done")),
    }
}

/// One ECO request against a completed job.
enum EcoOp {
    Edit(String),
    Undo,
    Redo,
}

/// Runs an `edit`/`undo`/`redo` request. The session is taken out of the
/// job and driven outside the lock (an edit re-routes nets, which can
/// take a while); a concurrent ECO request on the same job is refused.
fn eco_op(shared: &Arc<Shared>, id: u64, op: &EcoOp) -> String {
    // Phase 1: claim the job's ECO session (or the makings of one).
    let (eco, layout, config) = {
        let mut g = shared.lock();
        let Some(job) = g.jobs.get_mut(&id) else {
            return error_line(&format!("no such job {id}"));
        };
        if job.state != JobState::Done {
            return error_line(&format!(
                "job {id} is {}; ECO edits need a completed job",
                job.state.name()
            ));
        }
        if job.eco_busy {
            return error_line(&format!("job {id} has an ECO request in progress"));
        }
        job.eco_busy = true;
        (job.eco.take(), job.layout.clone(), job.config())
    };
    let release = |eco: Option<Box<EcoSession>>, events: Vec<String>| {
        let mut g = shared.lock();
        if let Some(job) = g.jobs.get_mut(&id) {
            job.eco = eco;
            job.eco_busy = false;
            job.trace.extend(events);
            if !job.trace.is_empty() {
                shared.event_cv.notify_all();
            }
        }
    };

    // Phase 2: bring the session up (first request routes the layout
    // from scratch — deterministic, so it reproduces the job's result).
    let mut eco = match eco {
        Some(eco) => eco,
        None => {
            let built = read_layout(&layout)
                .map_err(|e| format!("layout rejected: {e}"))
                .and_then(|(plane, netlist)| {
                    EcoSession::create(config, plane, netlist, true).map_err(|e| e.to_string())
                });
            match built {
                Ok(mut eco) => {
                    // The batch events duplicate the job's original
                    // trace; only edit events should stream.
                    let _ = eco.drain_events();
                    Box::new(eco)
                }
                Err(message) => {
                    release(None, Vec::new());
                    return error_line(&format!("job {id}: {message}"));
                }
            }
        }
    };

    // Phase 3: the operation itself.
    let mut results = Vec::new();
    let outcome: Result<(), String> = match op {
        EcoOp::Undo => eco.undo().map_err(|e| e.to_string()),
        EcoOp::Redo => eco.redo().map_err(|e| e.to_string()),
        EcoOp::Edit(script) => parse_edit_script(script)
            .map_err(|e| e.to_string())
            .and_then(|ops| {
                // One at a time: ops before a failure stay applied and
                // reported.
                for op in &ops {
                    match eco.run_script(std::slice::from_ref(op)) {
                        Ok(outcomes) => results.push(match &outcomes[0] {
                            OpOutcome::Edit(e) => format!(
                                "{{\"edit\":{},\"kind\":\"{}\",\"invalidated\":{},\"rerouted\":{},\"failed\":{}}}",
                                e.edit,
                                e.kind.name(),
                                e.invalidated.len(),
                                e.rerouted,
                                e.failed
                            ),
                            OpOutcome::Undo => "{\"op\":\"undo\"}".to_string(),
                            OpOutcome::Redo => "{\"op\":\"redo\"}".to_string(),
                        }),
                        Err(e) => return Err(e.to_string()),
                    }
                }
                Ok(())
            }),
    };

    let (routed, failed, _) = eco.stats();
    let (undoable, redoable) = (eco.undo_depth(), eco.redo_depth());
    let events: Vec<String> = eco
        .drain_events()
        .iter()
        .map(sadp_obs::RouterEvent::to_json_line)
        .collect();
    release(Some(eco), events);
    match outcome {
        Err(message) => error_line(&format!("job {id}: {message}")),
        Ok(()) => {
            let results = match op {
                EcoOp::Edit(_) => format!("\"results\":[{}],", results.join(",")),
                _ => String::new(),
            };
            format!(
                "{{\"ok\":true,\"job\":{id},{results}\"routed\":{routed},\"failed\":{failed},\
                 \"undoable\":{undoable},\"redoable\":{redoable}}}"
            )
        }
    }
}

fn subscribe(shared: &Arc<Shared>, id: u64, mut out: TcpStream) -> io::Result<()> {
    if !shared.lock().jobs.contains_key(&id) {
        writeln!(out, "{}", error_line(&format!("no such job {id}")))?;
        return Ok(());
    }
    let mut cursor = 0usize;
    loop {
        let (lines, final_line, ended) = {
            let mut g = shared.lock();
            loop {
                let job = &g.jobs[&id];
                if job.trace.len() > cursor || job.final_line.is_some() || g.shutdown {
                    break;
                }
                g = shared.event_cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
            let job = &g.jobs[&id];
            let lines: Vec<String> = job.trace[cursor..].to_vec();
            cursor = job.trace.len();
            (lines, job.final_line.clone(), g.shutdown)
        };
        for line in &lines {
            writeln!(out, "{line}")?;
        }
        if let Some(final_line) = final_line {
            writeln!(out, "{final_line}")?;
            return Ok(());
        }
        if ended {
            writeln!(
                out,
                "{}",
                error_line("daemon is shutting down; job checkpointed for the next run")
            )?;
            return Ok(());
        }
    }
}

/// What a worker needs to bring a job's session to life, gathered under
/// the lock and executed outside it.
enum SliceWork {
    Advance(Box<RoutingSession>),
    Create {
        layout: String,
        config: RouterConfig,
        ckpt: Option<String>,
    },
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        // Pop the best ready job.
        let (id, work) = {
            let mut g = shared.lock();
            let key = loop {
                if g.shutdown {
                    return;
                }
                if let Some(&key) = g.queue.iter().next() {
                    g.queue.remove(&key);
                    break key;
                }
                g = shared.work_cv.wait(g).unwrap_or_else(|e| e.into_inner());
            };
            let id = key.2;
            let Some(job) = g.jobs.get_mut(&id) else {
                continue;
            };
            if !matches!(job.state, JobState::Queued | JobState::Running) {
                // A cancel settled the job while it sat in the queue.
                continue;
            }
            let first_slice = job.state == JobState::Queued && job.session.is_none();
            job.state = JobState::Running;
            let work = match job.session.take() {
                Some(session) => SliceWork::Advance(Box::new(session)),
                None => SliceWork::Create {
                    layout: job.layout.clone(),
                    config: job.config(),
                    ckpt: job.ckpt.clone(),
                },
            };
            if first_slice {
                job.trace
                    .push(SessionEvent::JobStarted { job: id }.to_json_line());
                shared.event_cv.notify_all();
            }
            (id, work)
        };

        // Bring the session up (parsing and journal replay are the
        // expensive parts; they run without the lock).
        let mut session = match work {
            SliceWork::Advance(session) => *session,
            SliceWork::Create {
                layout,
                config,
                ckpt,
            } => match create_session(&layout, config, ckpt.as_deref()) {
                Ok((session, resumed_nets)) => {
                    if let Some(nets_replayed) = resumed_nets {
                        let mut g = shared.lock();
                        if let Some(job) = g.jobs.get_mut(&id) {
                            job.trace.push(
                                SessionEvent::JobResumed {
                                    job: id,
                                    nets_replayed,
                                }
                                .to_json_line(),
                            );
                        }
                        shared.event_cv.notify_all();
                    }
                    session
                }
                Err(message) => {
                    let mut g = shared.lock();
                    if let Some(job) = g.jobs.get_mut(&id) {
                        job.state = JobState::Failed;
                        job.trace
                            .push(SessionEvent::JobFailed { job: id }.to_json_line());
                        job.final_line = Some(format!(
                            "{{\"done\":true,\"job\":{id},\"state\":\"failed\",\"error\":{}}}",
                            json::escape(&message)
                        ));
                        let job = &g.jobs[&id];
                        shared.persist_meta(job);
                        shared.persist_final(job);
                    }
                    shared.event_cv.notify_all();
                    continue;
                }
            },
        };

        // One bounded slice.
        let status = session.advance(StepBudget::steps(shared.slice_steps));
        let events = session.drain_events();
        let (steps_done, steps_total) = session.progress();

        let mut g = shared.lock();
        let shutting_down = g.shutdown;
        let Some(job) = g.jobs.get_mut(&id) else {
            continue;
        };
        job.steps_done = steps_done;
        job.steps_total = steps_total;
        for ev in &events {
            job.trace.push(ev.to_json_line());
        }
        match status {
            SessionStatus::Done(report) => {
                job.state = JobState::Done;
                job.ckpt = None;
                job.trace.push(
                    SessionEvent::JobDone {
                        job: id,
                        routed: report.routed_nets as u64,
                        failed: (report.total_nets - report.routed_nets) as u64,
                    }
                    .to_json_line(),
                );
                job.final_line = Some(done_line(id, &report));
                let job = &g.jobs[&id];
                shared.persist_meta(job);
                shared.persist_final(job);
                if let Some(dir) = &shared.state_dir {
                    let _ = std::fs::remove_file(dir.join(format!("job-{id}.ckpt")));
                }
            }
            SessionStatus::Running | SessionStatus::CheckpointReady => {
                if job.cancel_requested {
                    session.cancel();
                    job.ckpt = Some(session.snapshot());
                    job.state = JobState::Cancelled;
                    job.cancel_requested = false;
                    job.trace
                        .push(SessionEvent::JobCancelled { job: id }.to_json_line());
                    job.final_line = Some(format!(
                        "{{\"done\":true,\"job\":{id},\"state\":\"cancelled\"}}"
                    ));
                    let job = &g.jobs[&id];
                    shared.persist_ckpt(job);
                    shared.persist_meta(job);
                    shared.persist_final(job);
                } else if shutting_down {
                    // Park the session; join_inner persists it.
                    job.session = Some(session);
                } else {
                    // Every slice boundary is checkpoint-aligned; persist
                    // and rotate to the back of the priority class so
                    // concurrent jobs interleave.
                    job.ckpt = Some(session.snapshot());
                    if matches!(status, SessionStatus::CheckpointReady) {
                        job.trace.push(
                            SessionEvent::JobCheckpointed {
                                job: id,
                                steps_done,
                                steps_total,
                            }
                            .to_json_line(),
                        );
                    }
                    job.session = Some(session);
                    let job = &g.jobs[&id];
                    shared.persist_ckpt(job);
                    shared.enqueue(&mut g, id);
                }
            }
            SessionStatus::Failed(e) => {
                // Unreachable in practice: workers never advance a
                // cancelled session. Settle the job anyway.
                job.state = JobState::Failed;
                job.trace
                    .push(SessionEvent::JobFailed { job: id }.to_json_line());
                job.final_line = Some(format!(
                    "{{\"done\":true,\"job\":{id},\"state\":\"failed\",\"error\":{}}}",
                    json::escape(&e.to_string())
                ));
                let job = &g.jobs[&id];
                shared.persist_meta(job);
                shared.persist_final(job);
            }
        }
        shared.event_cv.notify_all();
    }
}

/// Builds (or resumes) the session for one job. Returns the session and,
/// for a resume, the number of journal nets replayed.
fn create_session(
    layout: &str,
    config: RouterConfig,
    ckpt: Option<&str>,
) -> Result<(RoutingSession, Option<u64>), String> {
    let (plane, netlist) = read_layout(layout).map_err(|e| format!("layout rejected: {e}"))?;
    match ckpt {
        None => {
            let session = RoutingSession::create(config, plane, netlist, true, true)
                .map_err(|e| e.to_string())?;
            Ok((session, None))
        }
        Some(text) => {
            let snap = Snapshot::parse(text).map_err(|e| format!("checkpoint rejected: {e}"))?;
            let session = RoutingSession::resume(config, plane, netlist, &snap, true, true)
                .map_err(|e| e.to_string())?;
            let replayed = session.router().ledger().routed().len() as u64;
            Ok((session, Some(replayed)))
        }
    }
}

fn done_line(id: u64, report: &RoutingReport) -> String {
    format!(
        "{{\"done\":true,\"job\":{id},\"state\":\"done\",\"report\":{{\
         \"total_nets\":{},\"routed_nets\":{},\"wirelength\":{},\"vias\":{},\
         \"overlay_units\":{},\"hard_overlay_violations\":{},\"cut_conflicts\":{},\
         \"ripups\":{},\"failed_budget\":{},\"bands_recovered\":{},\"waves_recovered\":{},\
         \"nodes_expanded\":{},\"cpu_s\":{:.6}}},\"profile\":{}}}",
        report.total_nets,
        report.routed_nets,
        report.wirelength,
        report.vias,
        report.overlay_units,
        report.hard_overlay_violations,
        report.cut_conflicts,
        report.ripups,
        report.failed_budget,
        report.bands_recovered,
        report.waves_recovered,
        report.nodes_expanded,
        report.cpu.as_secs_f64(),
        report.profile.to_json()
    )
}

/// A line-oriented protocol client (the `sadp submit` / `sadp job` half;
/// also the in-process test harness).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Forwards the connect error.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request and reads one response line.
    ///
    /// # Errors
    ///
    /// Socket errors, or a protocol-level `{"ok":false}` response
    /// (returned as the error message).
    pub fn call(&mut self, req: &Request) -> io::Result<Json> {
        writeln!(self.writer, "{}", req.to_json_line())?;
        let line = self.read_line()?;
        let v = json::parse(&line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if v.get("ok").and_then(Json::as_bool) == Some(false) {
            let msg = v
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown server error")
                .to_string();
            return Err(io::Error::other(msg));
        }
        Ok(v)
    }

    /// Reads one line (for streaming `subscribe` responses).
    ///
    /// # Errors
    ///
    /// Socket errors; a closed connection is `UnexpectedEof`.
    pub fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Sends `subscribe` and streams lines into `on_line` until the
    /// terminal `{"done":...}` line, which is returned parsed.
    ///
    /// # Errors
    ///
    /// Socket errors, or an `{"ok":false}` line (e.g. unknown job or
    /// daemon shutdown), returned as the error message.
    pub fn subscribe(&mut self, job: u64, mut on_line: impl FnMut(&str)) -> io::Result<Json> {
        writeln!(self.writer, "{}", Request::Subscribe { job }.to_json_line())?;
        loop {
            let line = self.read_line()?;
            let v =
                json::parse(&line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            if v.get("done").is_some() {
                return Ok(v);
            }
            if v.get("ok").and_then(Json::as_bool) == Some(false) {
                let msg = v
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown server error")
                    .to_string();
                return Err(io::Error::other(msg));
            }
            on_line(&line);
        }
    }
}
