//! End-to-end tests for the job daemon: submit/subscribe over real TCP,
//! concurrent jobs, cancel + resume, and restart-from-state-dir — each
//! checked for byte-identical traces / identical reports against a
//! direct in-process route of the same layout.

use sadp_core::{Router, RouterConfig, RoutingReport};
use sadp_grid::io::read_layout;
use sadp_obs::BufferRecorder;
use sadp_serve::{serve, Client, Json, Request, ServeConfig};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../fixtures/corpus")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Routes the layout directly (no daemon) and returns the report plus
/// the canonical JSONL trace — the byte-level reference for streams.
fn route_direct(layout: &str, threads: usize) -> (RoutingReport, Vec<String>) {
    let (mut plane, netlist) = read_layout(layout).expect("fixture parses");
    let mut config = RouterConfig::paper_defaults();
    config.threads = threads;
    let mut router = Router::new(config);
    let mut rec = BufferRecorder::with_flags(true, true);
    let report = router.route_all_with(&mut plane, &netlist, &mut rec);
    let trace: Vec<String> = rec.take_events().iter().map(|e| e.to_json_line()).collect();
    (report, trace)
}

fn submit(client: &mut Client, layout: &str, priority: u8) -> u64 {
    let resp = client
        .call(&Request::Submit {
            layout: layout.to_string(),
            priority,
            threads: Some(2),
            node_budget: None,
            deadline_ms: None,
        })
        .expect("submit succeeds");
    resp.get("job").and_then(Json::as_u64).expect("job id")
}

/// Streams a job to completion, returning the router-event lines (the
/// `job_*` lifecycle lines filtered out) and the terminal line.
fn stream_job(addr: &str, job: u64) -> (Vec<String>, Json) {
    let mut client = Client::connect(addr).expect("connect");
    let mut lines = Vec::new();
    let done = client
        .subscribe(job, |line| lines.push(line.to_string()))
        .expect("job reaches a terminal state");
    let router_lines: Vec<String> = lines
        .into_iter()
        .filter(|l| !l.contains("\"event\":\"job_"))
        .collect();
    (router_lines, done)
}

fn report_fields(done: &Json) -> (u64, u64, u64, u64) {
    let report = done.get("report").expect("done line has a report");
    let get = |k: &str| report.get(k).and_then(Json::as_u64).unwrap();
    (
        get("routed_nets"),
        get("wirelength"),
        get("vias"),
        get("nodes_expanded"),
    )
}

#[test]
fn served_job_streams_the_exact_route_trace() {
    let layout = fixture("clock-tree-multi-terminal.layout");
    let (report, want_trace) = route_direct(&layout, 2);

    let server = serve(ServeConfig::default()).expect("bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let job = submit(&mut client, &layout, 100);

    let (trace, done) = stream_job(&addr, job);
    assert_eq!(
        trace, want_trace,
        "served trace must be byte-identical to sadp route --trace"
    );
    assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));
    let (routed, wl, vias, nodes) = report_fields(&done);
    assert_eq!(routed, report.routed_nets as u64);
    assert_eq!(wl, report.wirelength);
    assert_eq!(vias, report.vias);
    assert_eq!(nodes, report.nodes_expanded);
    server.shutdown();
}

#[test]
fn two_concurrent_jobs_interleave_and_both_match_direct_routes() {
    let layout_a = fixture("clock-tree-multi-terminal.layout");
    let layout_b = fixture("odd-cycle-merge-and-cut.layout");
    let (_, want_a) = route_direct(&layout_a, 2);
    let (_, want_b) = route_direct(&layout_b, 2);

    // One worker and small slices: the two jobs MUST interleave, which
    // is exactly what per-job stream isolation has to survive.
    let server = serve(ServeConfig {
        workers: 1,
        slice_steps: 1,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let job_a = submit(&mut client, &layout_a, 100);
    let job_b = submit(&mut client, &layout_b, 100);

    let ta = {
        let addr = addr.clone();
        std::thread::spawn(move || stream_job(&addr, job_a))
    };
    let (trace_b, done_b) = stream_job(&addr, job_b);
    let (trace_a, done_a) = ta.join().unwrap();
    assert_eq!(trace_a, want_a, "job A trace");
    assert_eq!(trace_b, want_b, "job B trace");
    assert_eq!(done_a.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(done_b.get("state").and_then(Json::as_str), Some("done"));
    server.shutdown();
}

#[test]
fn priorities_run_strictly_ordered_on_one_worker() {
    let layout = fixture("odd-cycle-merge-and-cut.layout");
    // Queue-only daemon first so the queue is fully formed before any
    // worker exists; then a restart with a worker drains it.
    let dir = tempdir("serve-prio");
    let server = serve(ServeConfig {
        workers: 0,
        state_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let low = submit(&mut client, &layout, 200);
    let high = submit(&mut client, &layout, 10);
    server.shutdown();

    let server = serve(ServeConfig {
        workers: 1,
        state_dir: Some(dir),
        ..ServeConfig::default()
    })
    .expect("rebind");
    let addr = server.addr().to_string();
    let (_, done_high) = stream_job(&addr, high);
    let (_, done_low) = stream_job(&addr, low);
    assert_eq!(done_high.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(done_low.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(done_high.get("job").and_then(Json::as_u64), Some(high));
    assert_eq!(done_low.get("job").and_then(Json::as_u64), Some(low));
    server.shutdown();
}

#[test]
fn cancel_then_resume_matches_the_uninterrupted_report() {
    let layout = fixture("multi-band-fault-recovery.layout");
    let (want, _) = route_direct(&layout, 2);

    let dir = tempdir("serve-cancel");
    let server = serve(ServeConfig {
        workers: 1,
        slice_steps: 1,
        state_dir: Some(dir),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let job = submit(&mut client, &layout, 100);

    // Wait for the first routed net, then cancel mid-run.
    {
        let mut sub = Client::connect(&addr).expect("connect");
        let mut saw_progress = false;
        let _ = sub.subscribe(job, |line| {
            if !saw_progress && line.contains("\"event\":\"net_routed\"") {
                saw_progress = true;
                let mut c = Client::connect(&addr).expect("connect");
                c.call(&Request::Cancel { job }).expect("cancel accepted");
            }
        });
        assert!(saw_progress, "job produced progress before cancelling");
    }
    let status = client.call(&Request::Status { job }).expect("status");
    assert_eq!(
        status.get("state").and_then(Json::as_str),
        Some("cancelled")
    );
    assert_eq!(
        status.get("has_checkpoint").and_then(Json::as_bool),
        Some(true)
    );

    client
        .call(&Request::Resume { job })
        .expect("resume accepted");
    let (_, done) = stream_job(&addr, job);
    assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));
    let (routed, wl, vias, _) = report_fields(&done);
    assert_eq!(routed, want.routed_nets as u64, "resumed result identical");
    assert_eq!(wl, want.wirelength);
    assert_eq!(vias, want.vias);
    server.shutdown();
}

#[test]
fn killed_daemon_resumes_mid_job_from_its_state_dir() {
    let layout = fixture("multi-band-fault-recovery.layout");
    let (want, _) = route_direct(&layout, 2);

    let dir = tempdir("serve-restart");
    let server = serve(ServeConfig {
        workers: 1,
        slice_steps: 1,
        state_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let job = submit(&mut client, &layout, 100);

    // Shut the daemon down as soon as the job makes progress: the
    // in-flight session must be parked as a checkpoint.
    loop {
        let status = client.call(&Request::Status { job }).expect("status");
        let state = status
            .get("state")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let steps = status.get("steps_done").and_then(Json::as_u64).unwrap();
        if state == "done" || steps >= 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    server.shutdown();

    let ckpt = std::fs::read_to_string(dir.join(format!("job-{job}.ckpt"))).ok();
    let finished = std::fs::read_to_string(dir.join(format!("job-{job}.final"))).ok();
    assert!(
        ckpt.is_some() || finished.is_some(),
        "shutdown persisted either a checkpoint or the final result"
    );
    if let Some(ckpt) = &ckpt {
        assert!(ckpt.starts_with("SADPCKPT v2"), "current checkpoint format");
    }

    // Restart on the same state dir: the job finishes with the same
    // result as an uninterrupted route.
    let server = serve(ServeConfig {
        workers: 1,
        slice_steps: 1,
        state_dir: Some(dir),
        ..ServeConfig::default()
    })
    .expect("rebind");
    let addr = server.addr().to_string();
    let (_, done) = stream_job(&addr, job);
    assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));
    let (routed, wl, vias, _) = report_fields(&done);
    assert_eq!(routed, want.routed_nets as u64);
    assert_eq!(wl, want.wirelength);
    assert_eq!(vias, want.vias);
    server.shutdown();
}

#[test]
fn bad_layout_and_unknown_job_fail_with_actionable_errors() {
    let server = serve(ServeConfig::default()).expect("bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let err = client
        .call(&Request::Submit {
            layout: "not a layout".into(),
            priority: 100,
            threads: None,
            node_budget: None,
            deadline_ms: None,
        })
        .unwrap_err();
    assert!(err.to_string().contains("layout rejected"), "{err}");

    let err = client.call(&Request::Status { job: 999 }).unwrap_err();
    assert!(err.to_string().contains("no such job 999"), "{err}");

    let err = client.call(&Request::Cancel { job: 999 }).unwrap_err();
    assert!(err.to_string().contains("no such job 999"), "{err}");
    server.shutdown();
}

#[test]
fn budgeted_job_finishes_with_a_valid_partial_result() {
    let layout = fixture("clock-tree-multi-terminal.layout");
    let server = serve(ServeConfig::default()).expect("bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let resp = client
        .call(&Request::Submit {
            layout,
            priority: 100,
            threads: Some(1),
            node_budget: Some(1), // exhausted immediately
            deadline_ms: None,
        })
        .expect("submit");
    let job = resp.get("job").and_then(Json::as_u64).unwrap();
    let (_, done) = stream_job(&addr, job);
    assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));
    let report = done.get("report").expect("report");
    let failed_budget = report.get("failed_budget").and_then(Json::as_u64).unwrap();
    assert!(failed_budget > 0, "budget of 1 node must trip");
    server.shutdown();
}

/// A unique, self-cleaning temp dir per test (std-only; no tempfile crate).
fn tempdir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sadp-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn eco_verbs_edit_undo_redo_a_done_job() {
    let layout = fixture("clock-tree-multi-terminal.layout");

    // ECO verbs are refused until the job completes. A queue-only
    // daemon (zero workers) pins the job in its unfinished state — on a
    // worker-backed daemon this small layout can finish before the undo
    // request arrives, making the refusal check racy.
    let queue_only = serve(ServeConfig {
        workers: 0,
        ..ServeConfig::default()
    })
    .expect("bind");
    let mut client = Client::connect(&queue_only.addr().to_string()).expect("connect");
    let parked = submit(&mut client, &layout, 100);
    let err = client
        .call(&Request::Undo { job: parked })
        .expect_err("undo on an unfinished job fails");
    assert!(err.to_string().contains("completed job"), "{err}");
    queue_only.shutdown();

    let server = serve(ServeConfig::default()).expect("bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let job = submit(&mut client, &layout, 100);
    stream_job(&addr, job);

    // A fresh session has nothing to undo.
    let err = client
        .call(&Request::Undo { job })
        .expect_err("empty journal");
    assert!(err.to_string().contains("nothing to undo"), "{err}");

    // An edit script: add a net, then move it.
    let resp = client
        .call(&Request::Edit {
            job,
            script: "add eco0 0:30,4 0:44,4\nmove eco0 0:30,2 0:44,2\n".into(),
        })
        .expect("edit succeeds");
    assert_eq!(resp.get("routed").and_then(Json::as_u64), Some(6));
    assert_eq!(resp.get("failed").and_then(Json::as_u64), Some(0));
    assert_eq!(resp.get("undoable").and_then(Json::as_u64), Some(2));
    let results = resp.get("results").expect("edit reports results");
    let rendered = format!("{results}");
    assert!(rendered.contains("\"kind\":\"add_net\""), "{rendered}");
    assert!(rendered.contains("\"kind\":\"move_net\""), "{rendered}");

    // Undo both edits: back to the batch result.
    for left in [1, 0] {
        let resp = client.call(&Request::Undo { job }).expect("undo succeeds");
        assert_eq!(resp.get("undoable").and_then(Json::as_u64), Some(left));
        assert_eq!(resp.get("redoable").and_then(Json::as_u64), Some(2 - left));
    }
    let resp = client
        .call(&Request::Status { job })
        .expect("status succeeds");
    assert_eq!(
        resp.get("state").and_then(Json::as_str),
        Some("done"),
        "ECO edits do not disturb the job lifecycle"
    );

    // Redo one edit, and a bad script line is an error.
    let resp = client.call(&Request::Redo { job }).expect("redo succeeds");
    assert_eq!(resp.get("redoable").and_then(Json::as_u64), Some(1));
    let err = client
        .call(&Request::Edit {
            job,
            script: "frobnicate\n".into(),
        })
        .expect_err("bad script rejected");
    assert!(err.to_string().contains("line 1"), "{err}");

    server.shutdown();
}

#[test]
fn submitted_dsn_is_canonicalised_and_routes_like_its_converted_layout() {
    let dsn = {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../fixtures/imported/led-matrix.dsn");
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
    };
    // The daemon canonicalises the DSN at the door, so the served trace
    // matches a direct route of the converted fixture byte for byte.
    let (_, want_trace) = route_direct(&fixture("imported-dsn-board.layout"), 2);

    let server = serve(ServeConfig::default()).expect("bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let job = submit(&mut client, &dsn, 100);
    let (trace, done) = stream_job(&addr, job);
    assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(
        trace, want_trace,
        "canonicalised DSN must route identically"
    );
    server.shutdown();
}

#[test]
fn submitted_def_without_lef_is_rejected_with_the_subset_message() {
    let def = "VERSION 5.8 ;\nDESIGN d ;\nUNITS DISTANCE MICRONS 1000 ;\n\
               DIEAREA ( 0 0 ) ( 64000 48000 ) ;\nCOMPONENTS 1 ;\n\
               - u1 RAM1 + PLACED ( 4000 4000 ) N ;\nEND COMPONENTS\nEND DESIGN\n";
    let server = serve(ServeConfig::default()).expect("bind");
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");
    let err = client
        .call(&Request::Submit {
            layout: def.to_string(),
            priority: 100,
            threads: None,
            node_budget: None,
            deadline_ms: None,
        })
        .expect_err("DEF with components cannot be served without a LEF");
    let msg = err.to_string();
    assert!(msg.contains("layout rejected"), "{msg}");
    assert!(msg.contains("need a LEF library"), "{msg}");
    server.shutdown();
}
