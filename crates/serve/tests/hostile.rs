//! Hostile-client and overload tests for the job daemon, driven over
//! real TCP: oversized request lines, raw garbage bytes, slow-loris
//! half-requests, connection floods, submit floods past `--max-queue`,
//! and crash recovery from corrupted state files. Every case must yield
//! a structured (JSON-parseable) error or shed response — never a
//! panic, a hang, or a silently resurrected job.

use sadp_core::{FaultPlan, IoFault, PersistKind};
use sadp_serve::{json, serve, Client, Json, Request, ServeConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

const TINY_LAYOUT: &str = "plane 3 16 16\nnet a 0:1,1 0:14,14\n";

/// A raw (non-`Client`) connection with a generous client-side read
/// timeout: if the daemon ever stops answering, the test fails with a
/// timeout error instead of hanging the suite.
fn raw_connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream
        .set_write_timeout(Some(Duration::from_secs(30)))
        .expect("write timeout");
    stream
}

/// Reads one response line and requires it to be valid JSON.
fn read_json_line(reader: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("daemon answers");
    assert!(n > 0, "daemon closed the connection without a response");
    json::parse(line.trim()).unwrap_or_else(|e| panic!("response is not JSON ({e}): {line:?}"))
}

/// The daemon must still answer a well-formed ping after hostile input.
fn assert_alive(addr: &str) {
    let mut client = Client::connect(addr).expect("daemon accepts connections");
    let resp = client.call(&Request::Ping).expect("daemon answers ping");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
}

#[test]
fn oversized_request_line_is_refused_with_a_structured_error() {
    let server = serve(ServeConfig {
        workers: 0,
        max_request_bytes: 4096,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();

    let mut stream = raw_connect(&addr);
    // 64 KiB of newline-less JSON-ish bytes: the daemon must refuse
    // after its 4 KiB cap without buffering the rest.
    let big = format!("{{\"cmd\":\"submit\",\"layout\":\"{}\"}}", "x".repeat(65536));
    stream.write_all(big.as_bytes()).expect("send oversized");
    stream.write_all(b"\n").ok();
    let mut reader = BufReader::new(stream);
    let resp = read_json_line(&mut reader);
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    let msg = resp.get("error").and_then(Json::as_str).unwrap();
    assert!(msg.contains("4096"), "names the limit: {msg}");
    assert!(msg.contains("--max-request-bytes"), "names the flag: {msg}");
    // The connection is closed, not drained.
    let mut rest = String::new();
    assert_eq!(reader.read_to_string(&mut rest).expect("clean close"), 0);

    assert_alive(&addr);
    server.shutdown();
}

#[test]
fn garbage_bytes_get_classified_errors_and_the_daemon_survives() {
    let server = serve(ServeConfig {
        workers: 0,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();

    // Raw non-UTF-8 bytes: structured refusal, then close.
    let mut stream = raw_connect(&addr);
    stream
        .write_all(b"\xff\xfe\x80garbage bytes\x00\x01\n")
        .expect("send garbage");
    let mut reader = BufReader::new(stream);
    let resp = read_json_line(&mut reader);
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    let msg = resp.get("error").and_then(Json::as_str).unwrap();
    assert!(msg.contains("UTF-8"), "{msg}");

    // Valid UTF-8 that is not JSON / not a known command: classified
    // error, and the connection stays usable for the next request.
    let mut stream = raw_connect(&addr);
    stream
        .write_all(b"GET / HTTP/1.1\n{\"cmd\":\"warp\"}\n{\"cmd\":\"ping\"}\n")
        .expect("send");
    let mut reader = BufReader::new(stream);
    let resp = read_json_line(&mut reader);
    let msg = resp.get("error").and_then(Json::as_str).unwrap();
    assert!(msg.contains("not valid JSON"), "{msg}");
    let resp = read_json_line(&mut reader);
    let msg = resp.get("error").and_then(Json::as_str).unwrap();
    assert!(msg.contains("unknown command"), "{msg}");
    let resp = read_json_line(&mut reader);
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));

    assert_alive(&addr);
    server.shutdown();
}

#[test]
fn slow_loris_half_request_times_out_with_a_structured_error() {
    let server = serve(ServeConfig {
        workers: 0,
        io_timeout_ms: 300,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();

    let mut stream = raw_connect(&addr);
    // Half a request, then silence: the server's read timeout must
    // fire and answer; the handler thread must not stay parked.
    stream
        .write_all(b"{\"cmd\":\"sub")
        .expect("send half request");
    let mut reader = BufReader::new(stream);
    let resp = read_json_line(&mut reader);
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    let msg = resp.get("error").and_then(Json::as_str).unwrap();
    assert!(msg.contains("timed out"), "{msg}");
    assert!(msg.contains("300"), "names the timeout: {msg}");
    let mut rest = String::new();
    assert_eq!(reader.read_to_string(&mut rest).expect("clean close"), 0);

    assert_alive(&addr);
    server.shutdown();
}

#[test]
fn connection_flood_past_max_conns_is_refused_with_a_structured_error() {
    let server = serve(ServeConfig {
        workers: 0,
        max_conns: 2,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();

    // Fill both slots, proving each handler is live with a ping.
    let mut held = Vec::new();
    for _ in 0..2 {
        let mut client = Client::connect(&addr).expect("connect");
        let resp = client.call(&Request::Ping).expect("ping");
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        held.push(client);
    }
    // Connection 3: structured refusal, then close.
    let stream = raw_connect(&addr);
    let mut reader = BufReader::new(stream);
    let resp = read_json_line(&mut reader);
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    let msg = resp.get("error").and_then(Json::as_str).unwrap();
    assert!(msg.contains("too many connections"), "{msg}");
    assert!(msg.contains("limit 2"), "{msg}");

    // Dropping a held connection frees its slot (poll briefly: the
    // handler thread notices the close asynchronously).
    drop(held.pop());
    let freed = (0..100).any(|_| {
        std::thread::sleep(Duration::from_millis(10));
        Client::connect(&addr)
            .and_then(|mut c| c.call(&Request::Ping))
            .is_ok()
    });
    assert!(freed, "closing a connection frees a slot");
    server.shutdown();
}

#[test]
fn submit_flood_past_max_queue_is_shed_with_an_overloaded_response() {
    let server = serve(ServeConfig {
        workers: 0, // queue-only: submits accumulate, nothing drains
        max_queue: 2,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();

    let submit_line = Request::Submit {
        layout: TINY_LAYOUT.to_string(),
        priority: 100,
        threads: None,
        node_budget: None,
        deadline_ms: None,
    }
    .to_json_line();

    let mut stream = raw_connect(&addr);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    // The first two fill the queue.
    for i in 0..2 {
        writeln!(stream, "{submit_line}").expect("send submit");
        let resp = read_json_line(&mut reader);
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "submit {i} admitted"
        );
    }
    // Every further submit is shed with the overloaded marker.
    for _ in 0..3 {
        writeln!(stream, "{submit_line}").expect("send submit");
        let resp = read_json_line(&mut reader);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            resp.get("overloaded").and_then(Json::as_bool),
            Some(true),
            "shed response carries the overloaded marker: {resp}"
        );
        let msg = resp.get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains("limit 2"), "{msg}");
    }
    // Non-submit traffic is NOT shed: status still answers.
    writeln!(stream, "{}", Request::Status { job: 1 }.to_json_line()).expect("send status");
    let resp = read_json_line(&mut reader);
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    server.shutdown();
}

#[test]
fn corrupt_state_files_are_quarantined_not_silently_resurrected() {
    let dir = tempdir("hostile-quarantine");
    // A plausible daemon crash artifact: a valid meta next to a layout
    // that was torn mid-write (the regression case for the old
    // `unwrap_or_default()` which resurrected it as an EMPTY layout).
    std::fs::write(
        dir.join("job-7.meta"),
        "priority=100\nthreads=1\nstate=queued\n",
    )
    .unwrap();
    std::fs::write(dir.join("job-7.layout"), "plane 3 16 16\nnet a 0:1,1 0:").unwrap();

    let server = serve(ServeConfig {
        workers: 1,
        state_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    // The job surfaces as failed:corrupt-state, never as a routable
    // empty layout.
    let resp = client.call(&Request::Status { job: 7 }).expect("status");
    assert_eq!(
        resp.get("state").and_then(Json::as_str),
        Some("failed:corrupt-state"),
        "{resp}"
    );
    // Its artifacts moved to quarantine/ ...
    assert!(
        dir.join("quarantine").join("job-7.layout").exists(),
        "layout lands in quarantine/"
    );
    assert!(
        dir.join("quarantine").join("job-7.meta").exists(),
        "meta lands in quarantine/"
    );
    // ... and the verdict was re-persisted under the original name.
    let meta = std::fs::read_to_string(dir.join("job-7.meta")).expect("verdict meta");
    assert!(meta.contains("state=failed:corrupt-state"), "{meta}");

    // Resume is refused: there is nothing left to resume from.
    let err = client
        .call(&Request::Resume { job: 7 })
        .expect_err("resume refused");
    assert!(err.to_string().contains("quarantined"), "{err}");

    // The terminal line tells the client what to do.
    let mut sub = Client::connect(&addr).expect("connect");
    let done = sub.subscribe(7, |_| {}).expect("terminal line");
    assert_eq!(
        done.get("state").and_then(Json::as_str),
        Some("failed:corrupt-state")
    );
    let msg = done.get("error").and_then(Json::as_str).unwrap();
    assert!(msg.contains("resubmit"), "{msg}");

    // A fresh submit works: id space was advanced past the corpse.
    let resp = client
        .call(&Request::Submit {
            layout: TINY_LAYOUT.to_string(),
            priority: 100,
            threads: None,
            node_budget: None,
            deadline_ms: None,
        })
        .expect("submit");
    let job = resp.get("job").and_then(Json::as_u64).unwrap();
    assert!(job > 7, "fresh job id {job} must not collide with job 7");
    server.shutdown();

    // Restart on the same dir: the persisted verdict is reloaded as-is
    // (no re-quarantine of files that are no longer there).
    let server = serve(ServeConfig {
        workers: 1,
        state_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("re-bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let resp = client.call(&Request::Status { job: 7 }).expect("status");
    assert_eq!(
        resp.get("state").and_then(Json::as_str),
        Some("failed:corrupt-state")
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_short_write_corruption_is_caught_by_restart_quarantine() {
    // Pick a seed whose plan tears job 1's layout write but leaves its
    // meta write alone — the exact shape of a real torn-write crash.
    let seed = (0..10_000u64)
        .find(|&s| {
            let plan = FaultPlan::new(s);
            plan.io_fault(1, PersistKind::Layout) == Some(IoFault::ShortWrite)
                && plan.io_fault(1, PersistKind::Meta).is_none()
        })
        .expect("some seed tears the layout and spares the meta");

    let dir = tempdir("hostile-faults");
    let server = serve(ServeConfig {
        workers: 0, // queue-only: the job must survive in persisted form
        state_dir: Some(dir.clone()),
        fault_seed: Some(seed),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let resp = client
        .call(&Request::Submit {
            layout: TINY_LAYOUT.to_string(),
            priority: 100,
            threads: None,
            node_budget: None,
            deadline_ms: None,
        })
        .expect("submit reports success — the torn write is silent");
    assert_eq!(resp.get("job").and_then(Json::as_u64), Some(1));
    server.shutdown();

    // The persisted layout really is torn.
    let torn = std::fs::read_to_string(dir.join("job-1.layout")).expect("layout file exists");
    assert!(torn.len() < TINY_LAYOUT.len(), "short write truncated it");

    // A faultless restart must catch the corruption and quarantine it.
    let server = serve(ServeConfig {
        workers: 1,
        state_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("re-bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let resp = client.call(&Request::Status { job: 1 }).expect("status");
    assert_eq!(
        resp.get("state").and_then(Json::as_str),
        Some("failed:corrupt-state"),
        "{resp}"
    );
    assert!(dir.join("quarantine").join("job-1.layout").exists());
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A unique, self-cleaning temp dir per test (std-only; no tempfile crate).
fn tempdir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sadp-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}
