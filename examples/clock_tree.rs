//! Multi-terminal nets: route a 5-sink clock-tree-style net together with
//! regular signal nets, then verify decomposability with the pixel
//! simulator.
//!
//! Run with: `cargo run --example clock_tree`

use sadp::decomp::verify_layers;
use sadp::grid::Pin;
use sadp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut plane = RoutingPlane::new(3, 56, 56, DesignRules::node_10nm())?;
    let p = |x, y| GridPoint::new(Layer(0), x, y);

    let mut netlist = Netlist::new();
    let clk = netlist.add_multi_pin(
        "clk",
        vec![
            Pin::fixed(p(28, 28)), // driver
            Pin::fixed(p(8, 8)),
            Pin::fixed(p(48, 8)),
            Pin::fixed(p(8, 48)),
            Pin::fixed(p(48, 48)),
        ],
    );
    for i in 0..6 {
        netlist.add_two_pin(format!("d{i}"), p(4 + 8 * i, 20), p(10 + 8 * i, 36));
    }

    let mut router = Router::new(RouterConfig::paper_defaults());
    let report = router.route_all(&mut plane, &netlist);
    println!("{report}\n");

    let routed = &router.routed()[&clk];
    println!(
        "clk tree: trunk {} tracks + {} branches ({} tracks total), {} vias",
        routed.path.wirelength(),
        routed.branches.len(),
        routed.wirelength(),
        routed.via_count()
    );

    // Verify the whole result through the independent pixel oracle.
    let layers: Vec<_> = (0..plane.layers())
        .map(|l| router.patterns_on_layer(Layer(l)))
        .collect();
    let verdict = verify_layers(&layers, &DesignRules::node_10nm());
    println!("\n{verdict}");
    assert!(verdict.is_decomposable());
    assert_eq!(report.cut_conflicts, 0);
    Ok(())
}
