//! Routes a congested region with our overlay-aware router and with the
//! cut-process baseline \[16\], and compares overlay, conflicts and
//! routability — the Fig. 21-vs-Fig. 22 comparison at block scale.
//!
//! Run with: `cargo run --release --example dense_region`

use sadp::baselines::{BaselineKind, BaselineRouter};
use sadp::prelude::*;
use sadp_grid::BenchmarkSpec;

fn main() {
    // A dense synthetic block: Test1 density at 1/20 the area.
    let spec = BenchmarkSpec::paper_fixed_suite().remove(0).scaled(0.05);

    let (mut plane, netlist) = spec.generate();
    let mut ours = Router::new(RouterConfig::paper_defaults());
    let ours_report = ours.route_all(&mut plane, &netlist);

    let (mut plane, netlist) = spec.generate();
    let mut baseline = BaselineRouter::new(BaselineKind::CutNoMerge);
    let baseline_report = baseline.route_all(&mut plane, &netlist);

    println!("router                  | Rout.  | overlay | #C");
    println!(
        "ours (overlay-aware)    | {:5.1}% | {:7} | {}",
        ours_report.routability(),
        ours_report.overlay_units,
        ours_report.cut_conflicts
    );
    println!(
        "cut w/o merge [16]      | {:5.1}% | {:7} | {}",
        baseline_report.routability(),
        baseline_report.overlay_units,
        baseline_report.cut_conflicts
    );

    assert_eq!(ours_report.cut_conflicts, 0, "ours is conflict-free");
    assert_eq!(ours_report.hard_overlay_violations, 0);
    assert!(
        ours_report.routability() >= baseline_report.routability(),
        "the merge technique gives the router more freedom"
    );
}
