//! Runs the full flow on a scaled Test1 benchmark and prints a complete
//! report: routing metrics, per-layer constraint-graph statistics, and the
//! scenario-kind census of the final layout.
//!
//! Run with: `cargo run --release --example full_flow_report [scale]`

use sadp::core::ScenarioCensus;
use sadp::prelude::*;
use sadp_grid::BenchmarkSpec;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2);
    let spec = BenchmarkSpec::paper_fixed_suite().remove(0).scaled(scale);
    println!(
        "benchmark {}: {} nets on {}x{} tracks x {} layers",
        spec.name, spec.net_count, spec.width_tracks, spec.height_tracks, spec.layers
    );

    let (mut plane, netlist) = spec.generate();
    let mut router = Router::new(RouterConfig::paper_defaults());
    let report = router.route_all(&mut plane, &netlist);
    println!("\n{report}\n");

    for (layer, graph) in router.graphs().iter().enumerate() {
        let eval = graph.evaluate();
        println!(
            "M{}: {} nets, {} constraint edges, overlay {} units, {} hard violations",
            layer + 1,
            graph.vertex_count(),
            graph.edge_count(),
            eval.overlay_units,
            eval.hard_violations
        );
    }

    println!("\npotential overlay scenario census:");
    print!("{}", ScenarioCensus::of(&router));

    assert_eq!(report.hard_overlay_violations, 0);
    assert_eq!(report.cut_conflicts, 0);
    println!("\nresult is decomposable: zero hard overlays, zero cut conflicts");
}
