//! Multiple pin candidate locations (the Table IV benchmark style of
//! baseline \[10\]): the router connects whichever tap pair of the two pin
//! shapes routes cheapest.
//!
//! Run with: `cargo run --example multi_candidate`

use sadp::grid::Pin;
use sadp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut plane = RoutingPlane::new(3, 48, 48, DesignRules::node_10nm())?;
    let p = |x, y| GridPoint::new(Layer(0), x, y);

    // A wall of blockage with a gap near the top: the lower tap pair is
    // blocked, the upper pair routes straight through the gap.
    for layer in 0..3 {
        plane.add_blockage(Layer(layer), TrackRect::new(24, 0, 24, 40));
    }

    let mut netlist = Netlist::new();
    let id = netlist.add_net(
        "flex",
        Pin::with_candidates(vec![p(10, 10), p(10, 44)]),
        Pin::with_candidates(vec![p(40, 10), p(40, 44)]),
    );
    netlist.add_two_pin("fixed", p(4, 20), p(20, 20));

    let mut router = Router::new(RouterConfig::paper_defaults());
    let report = router.route_all(&mut plane, &netlist);
    println!("{report}");
    assert_eq!(report.routed_nets, 2);

    let routed = &router.routed()[&id];
    println!(
        "net 'flex' chose taps {} -> {} ({} tracks, {} vias)",
        routed.path.source(),
        routed.path.target(),
        routed.path.wirelength(),
        routed.path.via_count()
    );
    // The chosen taps are the unblocked pair above the wall.
    assert_eq!(routed.path.source().y, 44);
    assert_eq!(routed.path.target().y, 44);
    Ok(())
}
