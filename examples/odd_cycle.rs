//! The paper's headline flexibility result (Fig. 2 / Fig. 21): an odd
//! cycle of coloring constraints that the trim process cannot decompose,
//! resolved by the cut process' merge-and-cut technique during routing.
//!
//! Run with: `cargo run --example odd_cycle`

use sadp::decomp::{render_ascii, trim_conflicts, ColoredPattern, CutSimulator};
use sadp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Single layer so the whole story plays out on M1.
    let mut plane = RoutingPlane::new(1, 24, 16, DesignRules::node_10nm())?;
    let mut netlist = Netlist::new();
    let p = |x, y| GridPoint::new(Layer(0), x, y);

    // A and B are collinear tip-to-tip at minimum spacing (must share a
    // mask and be separated by a cut — type 1-b), C runs alongside both
    // (must differ from each — type 1-a). In the trim process this cycle
    // has no legal coloring; the cut process decomposes it by merging.
    netlist.add_two_pin("A", p(2, 5), p(6, 5));
    netlist.add_two_pin("B", p(7, 5), p(12, 5));
    netlist.add_two_pin("C", p(2, 6), p(12, 6));

    let config = RouterConfig {
        pin_guard: 0.0, // keep the canonical straight routes
        ..RouterConfig::paper_defaults()
    };
    let mut router = Router::new(config);
    let report = router.route_all(&mut plane, &netlist);
    println!("{report}\n");
    assert_eq!(report.routed_nets, 3);
    assert_eq!(report.hard_overlay_violations, 0);

    // Decompose the result with the pixel simulator and render the masks.
    let patterns: Vec<ColoredPattern> = router
        .patterns_on_layer(Layer(0))
        .into_iter()
        .map(|(net, color, rects)| ColoredPattern::new(net, color, rects))
        .collect();
    let sim = CutSimulator::new(DesignRules::node_10nm());
    let decomposition = sim.run(&patterns);
    println!(
        "cut process: side overlay {} units, hard runs {}, cut conflicts {}",
        decomposition.report.side_overlay_units(),
        decomposition.report.hard_overlay_runs,
        decomposition.report.cut_conflicts
    );
    println!("{}", render_ascii(&decomposition, &patterns));

    // The same colored layout is NOT decomposable with the trim process:
    // the facing line ends of A and B conflict for every coloring.
    let trim = trim_conflicts(&patterns, &DesignRules::node_10nm());
    println!(
        "trim process on the same layout: {} line-end conflicts, {} coloring conflicts",
        trim.line_end, trim.coloring
    );
    assert!(
        trim.line_end > 0,
        "the trim process cannot print this layout"
    );
    assert_eq!(decomposition.report.cut_conflicts, 0);
    Ok(())
}
