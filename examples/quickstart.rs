//! Quickstart: route a handful of nets on a small 3-layer plane and print
//! the routing report and the mask colors.
//!
//! Run with: `cargo run --example quickstart`

use sadp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64x64-track plane (2.56 µm square at the 40 nm pitch) with the
    // paper's 10 nm-node design rules.
    let rules = DesignRules::node_10nm();
    let mut plane = RoutingPlane::new(3, 64, 64, rules)?;

    // A few two-pin nets, including a tight parallel pair that forces a
    // hard different-color constraint (type 1-a).
    let mut netlist = Netlist::new();
    let p = |x, y| GridPoint::new(Layer(0), x, y);
    let bus0 = netlist.add_two_pin("bus0", p(4, 10), p(40, 10));
    let bus1 = netlist.add_two_pin("bus1", p(4, 11), p(40, 11));
    netlist.add_two_pin("clk", p(10, 4), p(10, 30));
    netlist.add_two_pin("data", p(20, 40), p(50, 20));

    // Route with the paper's parameters (α=β=1, γ=1.5, f_threshold=10).
    let mut router = Router::new(RouterConfig::paper_defaults());
    let report = router.route_all(&mut plane, &netlist);

    println!("{report}");
    println!();
    println!("mask colors on M1:");
    for (net, color, rects) in router.patterns_on_layer(Layer(0)) {
        println!("  net {net}: {color} ({} fragments)", rects.len());
    }

    // The adjacent bus wires must end up on different masks.
    let c0 = router.color_of(bus0, Layer(0)).expect("routed");
    let c1 = router.color_of(bus1, Layer(0)).expect("routed");
    assert_ne!(c0, c1, "type 1-a pairs are colored differently");
    assert_eq!(report.hard_overlay_violations, 0);
    assert_eq!(report.cut_conflicts, 0);
    println!("\nno hard overlays, no cut conflicts — decomposable result");
    Ok(())
}
