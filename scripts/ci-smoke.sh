#!/usr/bin/env bash
# End-to-end smoke suite for the sadp CLI, shared by CI and local runs.
#
# Usage: scripts/ci-smoke.sh [corpus|trace|fault|serve|eco|wire|all]
#
# Environment:
#   SADP_BIN         sadp binary to drive (default ./target/release/sadp;
#                    CI builds it first, tests point this at the debug bin)
#   SADP_SMOKE_PORT  first of three consecutive TCP ports for the serve
#                    smoke (default 7471)
#
# Every check is vacuity-guarded: a guard greps for evidence the
# interesting path actually ran before comparing outputs, so a silently
# skipped code path fails the suite instead of passing it.
set -euo pipefail

BIN=${SADP_BIN:-./target/release/sadp}
PORT=${SADP_SMOKE_PORT:-7471}
cd "$(dirname "$0")/.."

die() {
  echo "ci-smoke: $*" >&2
  exit 1
}

[ -x "$BIN" ] || die "binary not found: $BIN (build it or set SADP_BIN)"

# Every fixture is a shrunk, once-failing instance; a replay failure
# means a fixed bug regressed. The imported suite rides along, with a
# per-format non-vacuity guard: a DSN and a DEF must each route >=1 net,
# otherwise the real-layout ingestion path is silently dead.
smoke_corpus() {
  for f in fixtures/corpus/*.layout; do
    "$BIN" fuzz --replay "$f"
  done
  routed_at_least_one() { # file
    local out
    out=$("$BIN" fuzz --replay "$1")
    echo "$out"
    [[ "$out" == *"clean ("* ]] || die "$1: replay was not clean"
    [[ "$out" =~ clean\ \(([0-9]+)\ nets,\ ([0-9]+)\ routed\) ]] ||
      die "$1: unrecognised replay summary"
    [ "${BASH_REMATCH[2]}" -ge 1 ] || die "$1: vacuous import — 0 nets routed"
  }
  local dsn=0 def=0
  for f in fixtures/imported/*.dsn; do
    routed_at_least_one "$f"
    dsn=$((dsn + 1))
  done
  for f in fixtures/imported/*.def; do
    routed_at_least_one "$f"
    def=$((def + 1))
  done
  [ "$dsn" -ge 1 ] || die "no .dsn fixture under fixtures/imported/"
  [ "$def" -ge 1 ] || die "no .def fixture under fixtures/imported/"
  echo "corpus smoke: OK ($dsn dsn, $def def imported)"
}

# Test5 at scale 0.2 is ~402 tracks wide: a multi-band partition, so the
# two runs genuinely take the sharded path.
smoke_trace() {
  "$BIN" bench --test 5 --scale 0.2 --threads 1 --trace /tmp/trace-t1.jsonl
  "$BIN" bench --test 5 --scale 0.2 --threads 2 --trace /tmp/trace-t2.jsonl
  grep -q band_merged /tmp/trace-t1.jsonl || die "banded path was not exercised"
  cmp /tmp/trace-t1.jsonl /tmp/trace-t2.jsonl
  echo "trace smoke: OK"
}

# Injected band panics must be absorbed by the serial fallback and the
# recovered result must stay byte-identical across thread counts. Seed 3
# panics at least one band on this fixture.
smoke_fault() {
  "$BIN" bench --test 5 --scale 0.2 --faults 3 --threads 1 --trace /tmp/trace-f1.jsonl
  "$BIN" bench --test 5 --scale 0.2 --faults 3 --threads 2 --trace /tmp/trace-f2.jsonl
  grep -q band_recovered /tmp/trace-f1.jsonl || die "no panic was injected"
  cmp /tmp/trace-f1.jsonl /tmp/trace-f2.jsonl
  echo "fault smoke: OK"
}

# Drives the binary over real TCP: a served job's streamed trace must
# byte-match `sadp route --trace`, and a job cancelled on a queue-only
# daemon must survive a daemon restart and resume to the same result as
# an uninterrupted submit. (`sadp submit --trace` strips the daemon's
# `job_*` lifecycle lines; on a raw socket the equivalent filter is
# `grep -v '"event":"job_'`.)
smoke_serve() {
  local STATE FIX BIG SERVE JOB REF
  STATE=$(mktemp -d)
  FIX=fixtures/corpus/clock-tree-multi-terminal.layout
  BIG=fixtures/corpus/multi-band-fault-recovery.layout
  # `grep -q` on a pipe SIGPIPEs the client under pipefail, so every
  # check captures the output first.
  status_has() { # job addr substring
    local out
    out=$("$BIN" job "$1" --status --addr "$2" 2>&1 || true)
    [[ "$out" == *"$3"* ]]
  }
  wait_ready() { # addr
    for _ in $(seq 100); do
      if status_has 999999 "$1" 'no such job'; then return 0; fi
      sleep 0.1
    done
    die "daemon at $1 never became ready"
  }
  # Live daemon: served trace is byte-identical to a direct route.
  "$BIN" serve --addr 127.0.0.1:"$PORT" --workers 2 --state-dir "$STATE" &
  SERVE=$!
  wait_ready 127.0.0.1:"$PORT"
  "$BIN" submit $FIX --addr 127.0.0.1:"$PORT" --wait --trace /tmp/served.jsonl
  "$BIN" route $FIX --trace /tmp/direct.jsonl
  cmp /tmp/served.jsonl /tmp/direct.jsonl
  kill $SERVE; wait $SERVE || true
  # Queue-only daemon, same state dir: submit stays queued and a cancel
  # settles it; the state survives the daemon's death.
  "$BIN" serve --addr 127.0.0.1:$((PORT + 1)) --workers 0 --state-dir "$STATE" &
  SERVE=$!
  wait_ready 127.0.0.1:$((PORT + 1))
  JOB=$("$BIN" submit $BIG --addr 127.0.0.1:$((PORT + 1)) | awk '{print $2; exit}')
  "$BIN" job "$JOB" --cancel --addr 127.0.0.1:$((PORT + 1))
  status_has "$JOB" 127.0.0.1:$((PORT + 1)) '"state":"cancelled"'
  kill $SERVE; wait $SERVE || true
  # Restarted worker daemon: the cancelled job reloads, resumes, and
  # matches an uninterrupted submit of the same layout.
  "$BIN" serve --addr 127.0.0.1:$((PORT + 2)) --workers 2 --state-dir "$STATE" &
  SERVE=$!
  wait_ready 127.0.0.1:$((PORT + 2))
  status_has "$JOB" 127.0.0.1:$((PORT + 2)) '"state":"cancelled"'
  "$BIN" job "$JOB" --resume --addr 127.0.0.1:$((PORT + 2))
  for _ in $(seq 200); do
    if status_has "$JOB" 127.0.0.1:$((PORT + 2)) '"state":"done"'; then break; fi
    sleep 0.1
  done
  status_has "$JOB" 127.0.0.1:$((PORT + 2)) '"state":"done"'
  REF=$("$BIN" submit $BIG --addr 127.0.0.1:$((PORT + 2)) --wait | awk '{print $2; exit}')
  kill $SERVE; wait $SERVE || true
  fields() {
    grep -o '"routed_nets":[0-9]*\|"wirelength":[0-9]*\|"vias":[0-9]*\|"overlay_units":[0-9]*\|"hard_overlay_violations":[0-9]*\|"cut_conflicts":[0-9]*' "$1"
  }
  diff <(fields "$STATE/job-$JOB.final") <(fields "$STATE/job-$REF.final")
  echo "serve smoke: OK"
}

# The anchor edit script exercises every edit kind plus undo/redo
# against the clock-tree fixture. An ECO trace is part of the
# reproducible contract: byte-identical across thread counts, like
# every other entry point.
smoke_eco() {
  local FIX SCRIPT
  FIX=fixtures/corpus/clock-tree-multi-terminal.layout
  SCRIPT=fixtures/corpus/eco-undo-redo-roundtrip.edits
  "$BIN" edit $FIX --script $SCRIPT --threads 1 --trace /tmp/eco-t1.jsonl
  "$BIN" edit $FIX --script $SCRIPT --threads 2 --trace /tmp/eco-t2.jsonl
  grep -q '"event":"edit_applied"' /tmp/eco-t1.jsonl || die "no edits ran"
  grep -q '"event":"nets_invalidated"' /tmp/eco-t1.jsonl || die "no invalidation ran"
  cmp /tmp/eco-t1.jsonl /tmp/eco-t2.jsonl
  echo "eco smoke: OK"
}

# Hostile-input smoke: replays the wire/ingest fuzz regime (parse level
# plus a live in-process daemon), then drives the external daemon binary
# with an oversized line, garbage bytes, a half-written request
# (slow-loris) and a submit flood past --max-queue. Vacuity guards: the
# fuzz campaign must both accept and reject inputs, and every hostile
# probe must see its *specific* structured error marker.
smoke_wire() {
  local OUT SERVE P LINE SUB
  OUT=$("$BIN" fuzz --wire --seeds 60)
  echo "$OUT"
  [[ "$OUT" == *clean* ]] || die "wire fuzz campaign was not clean"
  [[ "$OUT" =~ checked\ ([0-9]+)\ inputs\ \(([0-9]+)\ accepted,\ ([0-9]+)\ rejected ]] ||
    die "unrecognised wire fuzz summary"
  [ "${BASH_REMATCH[2]}" -ge 1 ] || die "vacuous wire fuzz: no input accepted"
  [ "${BASH_REMATCH[3]}" -ge 1 ] || die "vacuous wire fuzz: no input rejected"

  P=$((PORT + 3))
  "$BIN" serve --addr 127.0.0.1:"$P" --workers 0 --max-request-bytes 2048 \
    --io-timeout-ms 500 --max-queue 1 &
  SERVE=$!
  probe() { # request line -> first response line
    exec 3<>/dev/tcp/127.0.0.1/"$P"
    printf '%s\n' "$1" >&3
    head -n 1 <&3
    exec 3<&- 3>&-
  }
  OUT=""
  for _ in $(seq 100); do
    if OUT=$(probe '{"cmd":"ping"}' 2>/dev/null) && [[ "$OUT" == *'"ok":true'* ]]; then
      break
    fi
    sleep 0.1
  done
  [[ "$OUT" == *'"ok":true'* ]] || die "daemon at port $P never became ready"

  # Oversized request line: structured refusal naming the cap.
  LINE=$(printf 'x%.0s' $(seq 4000))
  OUT=$(probe "$LINE")
  [[ "$OUT" == *'exceeds 2048 bytes'* ]] || die "oversized line not refused: $OUT"
  # Garbage bytes: classified parse error.
  OUT=$(probe 'GET / HTTP/1.1')
  [[ "$OUT" == *'not valid JSON'* ]] || die "garbage not classified: $OUT"
  # Slow-loris: half a request, then silence — the daemon must answer
  # with its timeout error instead of parking the handler thread.
  exec 3<>/dev/tcp/127.0.0.1/"$P"
  printf '{"cmd":"pi' >&3
  OUT=$(head -n 1 <&3)
  exec 3<&- 3>&-
  [[ "$OUT" == *'timed out'* ]] || die "slow-loris not timed out: $OUT"
  # Submit flood past --max-queue 1: the second submit is shed with the
  # overloaded marker.
  SUB='{"cmd":"submit","layout":"plane 3 8 8\nnet a 0:1,1 0:6,6\n"}'
  OUT=$(probe "$SUB")
  [[ "$OUT" == *'"ok":true'* ]] || die "first submit not admitted: $OUT"
  OUT=$(probe "$SUB")
  [[ "$OUT" == *'"overloaded":true'* ]] || die "flooded submit not shed: $OUT"

  probe '{"cmd":"shutdown"}' >/dev/null || true
  wait $SERVE || true
  echo "wire smoke: OK"
}

case "${1:-all}" in
  corpus) smoke_corpus ;;
  trace) smoke_trace ;;
  fault) smoke_fault ;;
  serve) smoke_serve ;;
  eco) smoke_eco ;;
  wire) smoke_wire ;;
  all)
    smoke_corpus
    smoke_trace
    smoke_fault
    smoke_serve
    smoke_eco
    smoke_wire
    echo "all smokes: OK"
    ;;
  *)
    echo "usage: $0 [corpus|trace|fault|serve|eco|wire|all]" >&2
    exit 2
    ;;
esac
