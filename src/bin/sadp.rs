//! `sadp` — command-line front end for the overlay-aware SADP router.
//!
//! ```text
//! sadp route <design> [--svg DIR] [--masks FILE] [--threads N]
//!            [--trace FILE] [--profile] [--checkpoint FILE] [--resume FILE]
//!                                                      route + verify a design file
//! sadp verify <design> [--threads N] [--trace FILE] [--profile]
//!                                                      route, then pixel-verify only
//! sadp convert <design> [--lef FILE] [--out FILE]      emit the native .layout form
//! sadp edit <design> --script FILE [--threads N] [--trace FILE]
//!                                                      route, then apply an ECO edit script
//! sadp bench [--test K] [--scale X] [--seed N] [--threads N] [--trace FILE]
//!            [--profile]                               route a TestK-family instance
//! sadp fuzz [--seeds N] [--start S] [--regime R] [--minimize] [--threads N]
//!           [--out DIR] [--replay FILE] [--faults SEED]
//!                                                      deterministic fuzzing campaign
//! sadp fuzz --wire [--seeds N] [--start S] [--regime R] [--no-live] [--out DIR]
//!                                                      wire/ingest hostile-input fuzzing
//! sadp table2                                          print the scenario table
//! sadp serve [--addr A] [--workers N] [--state-dir DIR] [--slice-steps N]
//!            [--max-request-bytes N] [--io-timeout-ms MS] [--max-conns N]
//!            [--max-queue N] [--faults SEED]           run the TCP job daemon
//! sadp submit <layout.txt> [--addr A] [--priority P] [--threads N]
//!             [--node-budget N] [--deadline-ms MS] [--trace FILE] [--wait]
//!                                                      submit a job to a daemon
//! sadp job <id> [--addr A] [--status|--cancel|--resume] manage a submitted job
//! ```
//!
//! `sadp fuzz` runs the generative oracle of `sadp_fuzz`: `--seeds N`
//! instances per regime (all five unless `--regime R` narrows it),
//! counting up from `--start`. Standard output is byte-identical for a
//! given flag set (timing goes to stderr). On a violation the (optionally
//! `--minimize`d) instance is written to `<out>/fuzz-<regime>-<seed>.layout`
//! together with a `.trace.jsonl` event stream, and the exit code is
//! nonzero. `--replay FILE` re-checks one such fixture instead of running
//! a campaign; a `# fault-seed:` marker in the fixture re-arms the same
//! fault plan automatically. `--faults SEED` turns on deterministic fault
//! injection: the oracle additionally checks that injected band panics
//! and budget exhaustions are recovered without corrupting the output.
//!
//! `sadp fuzz --wire` targets the untrusted-bytes surface instead of the
//! router core: seed corpora of wire-protocol request lines and
//! DSN/DEF/LEF/layout inputs are mutated per `(regime, seed)` and every
//! parser must classify the result without panicking, deterministically.
//! The `protocol` regime additionally probes a live in-process daemon
//! over TCP (skip with `--no-live`): each input must be answered with
//! one parseable JSON line within the deadline. Failures are written to
//! `<out>/fuzz-wire-<regime>-<seed>.txt`.
//!
//! `--threads N` runs the region-sharded schedule on up to `N` worker
//! threads: band-interior nets on band workers, then band-straddling
//! nets in footprint-disjoint waves whose pre-searches run concurrently
//! but commit in canonical order. The result is byte-identical for
//! every `N` (the band partition, the wave partition and the commit
//! order depend only on the plane geometry and the netlist); only the
//! wall-clock changes.
//!
//! `--trace FILE` writes the structured pipeline event stream as JSONL
//! (one event per line; see `sadp_obs::RouterEvent`). Events carry only
//! logical routing facts, so the file is byte-identical for every
//! `--threads` value. `--profile` prints the per-stage time/count table
//! after routing.
//!
//! Budget flags (route/verify/bench): `--net-nodes N` caps A* node
//! expansions per net (deterministic), `--net-deadline-ms MS` caps
//! wall-clock per net, `--run-nodes N` / `--run-deadline-ms MS` cap the
//! whole run; over-budget nets fail gracefully and the run finalises what
//! it committed. `--faults SEED` (route/verify/bench) injects the
//! deterministic fault plan for that seed — a recovery test-bench, not a
//! production mode.
//!
//! `--checkpoint FILE` (route) periodically snapshots the commit ledger
//! to `FILE` (atomic tmp+rename). `--resume FILE` starts from such a
//! snapshot instead of from scratch; the final output is byte-identical
//! to the uninterrupted run. Under the hood `route` drives a stepwise
//! `sadp_core::RoutingSession` in bounded slices — the same machinery
//! the job daemon uses.
//!
//! `sadp serve` runs the zero-dependency TCP job daemon of `sadp_serve`:
//! jobs are submitted as layout text over a newline-delimited JSON
//! protocol (see `sadp_serve::protocol`), queued by priority, advanced
//! in bounded slices by a worker pool, and checkpointed to `--state-dir`
//! so a restarted daemon resumes them byte-identically. `sadp submit`
//! and `sadp job` are the matching client commands; `sadp submit --wait
//! --trace FILE` streams the job's event trace, which (lifecycle lines
//! aside) is byte-identical to `sadp route --trace` of the same layout.
//!
//! The daemon's hostile-input limits (0 disables each):
//! `--max-request-bytes N` caps one request line (default 16 MiB; a
//! longer line gets a structured error and the connection closes),
//! `--io-timeout-ms MS` bounds socket reads/writes (default 10000;
//! slow-loris clients get a timeout error instead of a parked thread),
//! `--max-conns N` caps concurrent connections (default 256), and
//! `--max-queue N` caps ready jobs (default 1024) — a submit past the
//! cap is shed with `{"ok":false,"overloaded":true,...}` before its
//! layout is parsed. On restart, corrupt `job-<id>.*` state files are
//! moved to `<state-dir>/quarantine/` and the job surfaces as
//! `failed:corrupt-state` rather than resurrecting with empty state.
//! `--faults SEED` arms deterministic persistence-fault injection
//! (short writes, ENOSPC-style errors) for recovery testing.
//!
//! `sadp edit` routes the layout, then drives a `sadp_core::eco::EcoSession`
//! through the operations of `--script` (one per line: `add`, `remove`,
//! `move`, `obstacle`, `clear`, `undo`, `redo` — see
//! `sadp_core::eco::parse_edit_script`). Each edit re-routes only the nets
//! inside the edit's dependence radius; `undo`/`redo` restore the router
//! state byte-identically. Stdout and the `--trace` stream are
//! byte-identical for every `--threads` value.
//!
//! Exit codes: 0 success, 1 failed check (verification, fuzz violation),
//! 2 usage error, 3 unreadable/malformed input, 4 routing failure
//! (router error, checkpoint mismatch, internal panic).
//!
//! `<design>` inputs accept three formats, auto-detected by *content*
//! (the extension is only a fallback hint): the native `.layout` text
//! format of `sadp_grid::io`, Specctra DSN boards, and DEF blocks
//! (macro footprints from `--lef FILE` or a same-stem `.lef` sidecar) —
//! see `sadp_ingest`. Imported designs print a one-line import summary;
//! native layouts print nothing extra, so their output is stable.
//! `sadp convert` emits the ingested design as a native `.layout`
//! fixture with a provenance comment header.

use sadp::core::{FaultPlan, RoutingSession, ScenarioCensus, SessionStatus, Snapshot, StepBudget};
use sadp::decomp::{
    export_masks, render_svg, verify_layers_observed, ColoredPattern, CutSimulator,
};
use sadp::grid::write_layout;
use sadp::ingest::{ingest_text, lef::read_lef, sidecar_lef, Format, Imported};
use sadp::obs::events_to_jsonl;
use sadp::prelude::*;
use sadp::serve::{serve, Client, Json, Request, ServeConfig};
use sadp_grid::BenchmarkSpec;
use std::process::ExitCode;

/// A CLI failure, classified so the process exit code tells scripts
/// *what kind* of failure happened without parsing stderr.
enum CliError {
    /// Bad flags or arguments (exit 2). An empty message prints only
    /// the usage block.
    Usage(String),
    /// Unreadable or malformed input — missing file, bad layout or
    /// snapshot text (exit 3).
    Input(String),
    /// The router failed: router/checkpoint error or internal panic
    /// (exit 4).
    Routing(String),
    /// A check found what it was looking for: verification failure,
    /// fuzz violation, or an output-side I/O error (exit 1).
    Other(String),
}

impl CliError {
    fn exit_code(&self) -> ExitCode {
        match self {
            CliError::Usage(_) => ExitCode::from(2),
            CliError::Input(_) => ExitCode::from(3),
            CliError::Routing(_) => ExitCode::from(4),
            CliError::Other(_) => ExitCode::FAILURE,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Input(m) | CliError::Routing(m) | CliError::Other(m) => {
                m
            }
        }
    }
}

type CliResult = Result<(), CliError>;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The CLI never surfaces a raw panic: the default hook's backtrace
    // banner is silenced and the payload is reported once below, as an
    // ordinary error with the routing exit code.
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dispatch(&args)))
        .unwrap_or_else(|payload| {
            Err(CliError::Routing(format!(
                "internal panic: {}",
                panic_message(payload.as_ref())
            )))
        });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            if !e.message().is_empty() {
                eprintln!("error: {}", e.message());
            }
            if matches!(e, CliError::Usage(_)) {
                print_usage();
            }
            e.exit_code()
        }
    }
}

fn dispatch(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("route") => cmd_route(&args[1..], false),
        Some("verify") => cmd_route(&args[1..], true),
        Some("convert") => cmd_convert(&args[1..]),
        Some("edit") => cmd_edit(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("job") => cmd_job(&args[1..]),
        Some("table2") => {
            for row in sadp::scenario::scenario_summary() {
                println!("{row}");
            }
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!("unknown command {other:?}"))),
        None => Err(CliError::Usage(String::new())),
    }
}

fn print_usage() {
    eprintln!("usage: sadp <route|verify|convert|edit|bench|fuzz|table2|serve|submit|job> [args]");
    eprintln!(
        "  route <design> [--svg DIR] [--masks FILE] [--threads N] \
         [--trace FILE] [--profile] [--checkpoint FILE] [--resume FILE]"
    );
    eprintln!("  verify <design> [--threads N] [--trace FILE] [--profile]");
    eprintln!("  convert <design> [--lef FILE] [--out FILE]");
    eprintln!("  edit <design> --script FILE [--threads N] [--trace FILE]");
    eprintln!(
        "  <design> is a .layout, Specctra .dsn or .def file; the format is \
         sniffed from the content. DEF macros come from --lef FILE or a \
         FILE.lef sidecar."
    );
    eprintln!(
        "  bench [--test K] [--scale X] [--seed N] [--threads N] [--trace FILE] \
         [--profile]"
    );
    eprintln!(
        "  fuzz [--seeds N] [--start S] [--regime R] [--minimize] [--threads N] \
         [--out DIR] [--replay FILE] [--faults SEED]"
    );
    eprintln!("  fuzz --wire [--seeds N] [--start S] [--regime R] [--no-live] [--out DIR]");
    eprintln!(
        "  route/verify/bench budgets: [--net-nodes N] [--net-deadline-ms MS] \
         [--run-nodes N] [--run-deadline-ms MS] [--faults SEED]"
    );
    eprintln!(
        "  serve [--addr A] [--workers N] [--state-dir DIR] [--slice-steps N] \
         [--max-request-bytes N] [--io-timeout-ms MS] [--max-conns N] \
         [--max-queue N] [--faults SEED]"
    );
    eprintln!(
        "  submit <layout.txt> [--addr A] [--priority P] [--threads N] \
         [--node-budget N] [--deadline-ms MS] [--trace FILE] [--wait]"
    );
    eprintln!("  job <id> [--addr A] [--status|--cancel|--resume]");
    eprintln!("  --trace FILE   write the pipeline event stream as JSONL");
    eprintln!("  --profile      print the per-stage time/count table");
    eprintln!("exit codes: 0 ok, 1 failed check, 2 usage, 3 bad input, 4 routing failure");
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses an optional `u64` flag; a present-but-unparsable value is a
/// usage error, absence is `None`.
fn u64_flag(args: &[String], flag: &str) -> Result<Option<u64>, CliError> {
    match flag_value(args, flag) {
        None => Ok(None),
        Some(v) => v.parse::<u64>().map(Some).map_err(|_| {
            CliError::Usage(format!("{flag} wants a non-negative integer, got {v:?}"))
        }),
    }
}

/// Router configuration honouring `--threads N` (default: serial), the
/// budget flags, and `--faults SEED`.
fn config_from(args: &[String]) -> Result<RouterConfig, CliError> {
    let mut config = RouterConfig::paper_defaults();
    if let Some(v) = flag_value(args, "--threads") {
        config.threads = v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
            CliError::Usage(format!("--threads wants a positive integer, got {v:?}"))
        })?;
    }
    if let Some(n) = u64_flag(args, "--net-nodes")? {
        config.net_node_budget = n;
    }
    if let Some(n) = u64_flag(args, "--net-deadline-ms")? {
        config.net_deadline_ms = n;
    }
    if let Some(n) = u64_flag(args, "--run-nodes")? {
        config.run_node_budget = n;
    }
    if let Some(n) = u64_flag(args, "--run-deadline-ms")? {
        config.run_deadline_ms = n;
    }
    if let Some(seed) = u64_flag(args, "--faults")? {
        config.faults = Some(FaultPlan::new(seed));
    }
    Ok(config)
}

/// The recorder for the `--trace`/`--profile` flags: collecting events
/// iff a trace file was asked for, timing iff the profile table was.
fn recorder_from(args: &[String]) -> (Option<&str>, bool, BufferRecorder) {
    let trace_path = flag_value(args, "--trace");
    let profile = args.iter().any(|a| a == "--profile");
    let rec = BufferRecorder::with_flags(trace_path.is_some(), profile);
    (trace_path, profile, rec)
}

fn write_trace(path: &str, rec: &mut BufferRecorder) -> CliResult {
    let jsonl = events_to_jsonl(&rec.take_events());
    std::fs::write(path, jsonl).map_err(|e| CliError::Other(format!("{path}: {e}")))?;
    println!("wrote {path}");
    Ok(())
}

/// Writes `text` to `path` via a sibling temp file + rename, so a crash
/// mid-write never leaves a torn checkpoint behind.
fn write_atomic(path: &str, text: &str) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// How many schedule increments `route` advances per session slice.
/// Matches the historical checkpoint throttle (one save per 64 nets).
const ROUTE_SLICE_STEPS: u64 = 64;

/// Reads and ingests a design file in any supported format (native
/// `.layout`, Specctra DSN, DEF). The format is sniffed from the file
/// content, with the extension as fallback hint. DEF macros come from
/// `--lef FILE` or, failing that, the `.lef` sidecar next to the DEF.
/// Returns the raw text alongside the imported design.
fn ingest_file(path: &str, args: &[String]) -> Result<(String, Imported), CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::Input(format!("{path}: {e}")))?;
    let lef_path = match flag_value(args, "--lef") {
        Some(p) => Some(std::path::PathBuf::from(p)),
        None => sidecar_lef(std::path::Path::new(path)),
    };
    let lef_lib = match &lef_path {
        Some(p) => {
            let lef_text = std::fs::read_to_string(p)
                .map_err(|e| CliError::Input(format!("{}: {e}", p.display())))?;
            Some(
                read_lef(&lef_text)
                    .map_err(|e| CliError::Input(format!("{}: lef: {e}", p.display())))?,
            )
        }
        None => None,
    };
    let imported = ingest_text(&text, Some(std::path::Path::new(path)), lef_lib.as_ref())
        .map_err(|e| CliError::Input(format!("{path}: {e}")))?;
    Ok((text, imported))
}

/// The import summary printed for non-native formats. Native layouts
/// print nothing, keeping `route` stdout byte-identical to before.
fn print_import_summary(path: &str, imported: &Imported) {
    if imported.format != Format::Layout {
        println!(
            "imported {path} ({}): {}",
            imported.format.name(),
            imported.notes.join("; ")
        );
    }
}

fn cmd_route(args: &[String], verify_only: bool) -> CliResult {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::Usage("missing layout file".into()))?;
    let (_, imported) = ingest_file(path, args)?;
    print_import_summary(path, &imported);
    let (plane, netlist) = (imported.plane, imported.netlist);

    let resume = match flag_value(args, "--resume") {
        Some(p) => {
            let snap_text =
                std::fs::read_to_string(p).map_err(|e| CliError::Input(format!("{p}: {e}")))?;
            Some(Snapshot::parse(&snap_text).map_err(|e| CliError::Input(format!("{p}: {e}")))?)
        }
        None => None,
    };
    let checkpoint_path = flag_value(args, "--checkpoint");

    let trace_path = flag_value(args, "--trace");
    let profile = args.iter().any(|a| a == "--profile");
    let config = config_from(args)?;

    // The route is a stepwise session advanced in bounded slices; every
    // slice boundary sits between canonical commits, so `--checkpoint`
    // snapshots there. A failed checkpoint write must not abort the
    // route: the run is still correct without it, it just loses
    // resumability from here on.
    let mut session = match &resume {
        Some(snap) => {
            RoutingSession::resume(config, plane, netlist, snap, trace_path.is_some(), profile)
        }
        None => RoutingSession::create(config, plane, netlist, trace_path.is_some(), profile),
    }
    .map_err(|e| CliError::Routing(e.to_string()))?;
    let report = loop {
        let status = session.advance(StepBudget::steps(ROUTE_SLICE_STEPS));
        if let Some(ckpt) = checkpoint_path {
            if let Err(e) = write_atomic(ckpt, &session.snapshot()) {
                eprintln!("warning: checkpoint {ckpt}: {e}");
            }
        }
        match status {
            SessionStatus::Running | SessionStatus::CheckpointReady => {}
            SessionStatus::Done(report) => break *report,
            SessionStatus::Failed(e) => return Err(CliError::Routing(e.to_string())),
        }
    };
    println!("{report}\n");

    let layers: Vec<_> = (0..session.plane().layers())
        .map(|l| session.router().patterns_on_layer(Layer(l)))
        .collect();
    let rules = *session.plane().rules();
    let verdict = verify_layers_observed(&layers, &rules, session.recorder_mut());
    println!("{verdict}");

    if let Some(file) = trace_path {
        let jsonl = events_to_jsonl(&session.drain_events());
        std::fs::write(file, jsonl).map_err(|e| CliError::Other(format!("{file}: {e}")))?;
        println!("wrote {file}");
    }
    if profile {
        println!("\n{}", session.recorder_mut().profile.table());
    }

    if verify_only {
        if verdict.is_decomposable() && report.cut_conflicts == 0 {
            return Ok(());
        }
        return Err(CliError::Other("layout did not verify".into()));
    }

    println!("\n{}", ScenarioCensus::of(session.router()));

    if let Some(dir) = flag_value(args, "--svg") {
        std::fs::create_dir_all(dir).map_err(|e| CliError::Other(format!("{dir}: {e}")))?;
        let sim = CutSimulator::new(rules);
        for (l, layer_patterns) in layers.iter().enumerate() {
            if layer_patterns.is_empty() {
                continue;
            }
            let pats: Vec<ColoredPattern> = layer_patterns
                .iter()
                .map(|(n, c, r)| ColoredPattern::new(*n, *c, r.clone()))
                .collect();
            let d = sim.run(&pats);
            let file = format!("{dir}/m{}.svg", l + 1);
            std::fs::write(&file, render_svg(&d, &pats))
                .map_err(|e| CliError::Other(format!("{file}: {e}")))?;
            println!("wrote {file}");
        }
    }
    if let Some(file) = flag_value(args, "--masks") {
        let sim = CutSimulator::new(rules);
        let mut out = String::new();
        for (l, layer_patterns) in layers.iter().enumerate() {
            if layer_patterns.is_empty() {
                continue;
            }
            let pats: Vec<ColoredPattern> = layer_patterns
                .iter()
                .map(|(n, c, r)| ColoredPattern::new(*n, *c, r.clone()))
                .collect();
            out.push_str(&format!("# layer M{}\n", l + 1));
            out.push_str(&export_masks(&sim.run(&pats)));
        }
        std::fs::write(file, out).map_err(|e| CliError::Other(format!("{file}: {e}")))?;
        println!("wrote {file}");
    }
    Ok(())
}

/// `sadp convert <file> [--lef FILE] [--out FILE]` — ingest any
/// supported format and emit the equivalent native `.layout` fixture
/// (stdout by default), with a provenance comment header.
fn cmd_convert(args: &[String]) -> CliResult {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::Usage("missing input file".into()))?;
    let (_, imported) = ingest_file(path, args)?;
    let name = std::path::Path::new(path)
        .file_name()
        .map_or_else(|| path.to_string(), |n| n.to_string_lossy().into_owned());
    let mut out = format!(
        "# converted from {name} ({} reader)\n",
        imported.format.name()
    );
    for note in &imported.notes {
        out.push_str(&format!("# {note}\n"));
    }
    out.push_str(&write_layout(&imported.plane, &imported.netlist));
    match flag_value(args, "--out") {
        Some(file) => {
            std::fs::write(file, out).map_err(|e| CliError::Other(format!("{file}: {e}")))?;
            println!("wrote {file}");
        }
        None => print!("{out}"),
    }
    Ok(())
}

fn cmd_edit(args: &[String]) -> CliResult {
    use sadp::core::eco::{parse_edit_script, EcoError, EcoSession, OpOutcome};

    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::Usage("missing layout file".into()))?;
    let (_, imported) = ingest_file(path, args)?;
    print_import_summary(path, &imported);
    let (plane, netlist) = (imported.plane, imported.netlist);
    let script_path =
        flag_value(args, "--script").ok_or_else(|| CliError::Usage("missing --script".into()))?;
    let script = std::fs::read_to_string(script_path)
        .map_err(|e| CliError::Input(format!("{script_path}: {e}")))?;
    let ops =
        parse_edit_script(&script).map_err(|e| CliError::Input(format!("{script_path}: {e}")))?;

    let trace_path = flag_value(args, "--trace");
    let config = config_from(args)?;
    let mut eco = EcoSession::create(config, plane, netlist, trace_path.is_some())
        .map_err(|e| CliError::Routing(e.to_string()))?;
    let (routed, failed, active) = eco.stats();
    println!("batch: {active} nets, {routed} routed, {failed} failed");

    // Ops run one at a time so an error mid-script still prints what the
    // earlier operations did — those stay applied.
    let mut result: Result<(), EcoError> = Ok(());
    for op in &ops {
        match eco.run_script(std::slice::from_ref(op)) {
            Ok(outcomes) => match &outcomes[0] {
                OpOutcome::Edit(e) => println!(
                    "edit {} {}: invalidated {}, rerouted {}, failed {}",
                    e.edit,
                    e.kind.name(),
                    e.invalidated.len(),
                    e.rerouted,
                    e.failed
                ),
                OpOutcome::Undo => println!("undo"),
                OpOutcome::Redo => println!("redo"),
            },
            Err(e) => {
                result = Err(e);
                break;
            }
        }
    }
    let (routed, failed, active) = eco.stats();
    println!("final: {active} nets, {routed} routed, {failed} failed");
    println!(
        "journal: {} undoable, {} redoable",
        eco.undo_depth(),
        eco.redo_depth()
    );

    if let Some(file) = trace_path {
        let jsonl = events_to_jsonl(&eco.drain_events());
        std::fs::write(file, jsonl).map_err(|e| CliError::Other(format!("{file}: {e}")))?;
        println!("wrote {file}");
    }
    match result {
        Ok(_) => Ok(()),
        Err(e @ (EcoError::Session(_) | EcoError::Router(_))) => {
            Err(CliError::Routing(format!("{script_path}: {e}")))
        }
        Err(e) => Err(CliError::Input(format!("{script_path}: {e}"))),
    }
}

fn cmd_serve(args: &[String]) -> CliResult {
    let mut config = ServeConfig {
        addr: flag_value(args, "--addr")
            .unwrap_or("127.0.0.1:7463")
            .to_string(),
        ..ServeConfig::default()
    };
    if let Some(v) = flag_value(args, "--workers") {
        // 0 is legal: a queue-only daemon that accepts and persists jobs
        // for a later run to execute.
        config.workers = v.parse::<usize>().map_err(|_| {
            CliError::Usage(format!("--workers wants a non-negative integer, got {v:?}"))
        })?;
    }
    config.state_dir = flag_value(args, "--state-dir").map(std::path::PathBuf::from);
    if let Some(n) = u64_flag(args, "--slice-steps")? {
        config.slice_steps = n.max(1);
    }
    // Hostile-input / overload limits. 0 disables the respective limit.
    if let Some(n) = u64_flag(args, "--max-request-bytes")? {
        config.max_request_bytes = n as usize;
    }
    if let Some(n) = u64_flag(args, "--io-timeout-ms")? {
        config.io_timeout_ms = n;
    }
    if let Some(n) = u64_flag(args, "--max-conns")? {
        config.max_conns = n as usize;
    }
    if let Some(n) = u64_flag(args, "--max-queue")? {
        config.max_queue = n as usize;
    }
    // A recovery test-bench, not a production mode: state-dir writes
    // suffer deterministic short writes / ENOSPC-style failures.
    config.fault_seed = u64_flag(args, "--faults")?;
    let workers = config.workers;
    let addr = config.addr.clone();
    let handle = serve(config).map_err(|e| CliError::Other(format!("{addr}: {e}")))?;
    println!(
        "sadp serve: listening on {} ({workers} workers)",
        handle.addr()
    );
    handle.join();
    println!("sadp serve: shut down");
    Ok(())
}

/// The daemon address a client command talks to.
fn client_addr(args: &[String]) -> &str {
    flag_value(args, "--addr").unwrap_or("127.0.0.1:7463")
}

fn cmd_submit(args: &[String]) -> CliResult {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::Usage("missing layout file".into()))?;
    let layout =
        std::fs::read_to_string(path).map_err(|e| CliError::Input(format!("{path}: {e}")))?;
    let priority = match flag_value(args, "--priority") {
        None => 100,
        Some(v) => v.parse::<u8>().map_err(|_| {
            CliError::Usage(format!(
                "--priority wants 0-255 (lower runs first), got {v:?}"
            ))
        })?,
    };
    let addr = client_addr(args);
    let mut client = Client::connect(addr).map_err(|e| CliError::Other(format!("{addr}: {e}")))?;
    let resp = client
        .call(&Request::Submit {
            layout,
            priority,
            threads: u64_flag(args, "--threads")?.map(|t| t as usize),
            node_budget: u64_flag(args, "--node-budget")?,
            deadline_ms: u64_flag(args, "--deadline-ms")?,
        })
        .map_err(|e| CliError::Other(e.to_string()))?;
    let job = resp
        .get("job")
        .and_then(Json::as_u64)
        .ok_or_else(|| CliError::Other("malformed server response to submit".into()))?;
    println!("job {job}");

    let trace_path = flag_value(args, "--trace");
    if trace_path.is_none() && !args.iter().any(|a| a == "--wait") {
        return Ok(());
    }
    // Stream to completion. The trace file keeps only router events, so
    // it is byte-identical to `sadp route --trace` of the same layout;
    // `job_*` lifecycle lines are daemon-side bookkeeping.
    let mut jsonl = String::new();
    let done = client
        .subscribe(job, |line| {
            if !line.contains("\"event\":\"job_") {
                jsonl.push_str(line);
                jsonl.push('\n');
            }
        })
        .map_err(|e| CliError::Other(e.to_string()))?;
    if let Some(file) = trace_path {
        std::fs::write(file, jsonl).map_err(|e| CliError::Other(format!("{file}: {e}")))?;
        println!("wrote {file}");
    }
    let state = done
        .get("state")
        .and_then(Json::as_str)
        .unwrap_or("unknown");
    println!("job {job}: {state}");
    if state == "done" {
        Ok(())
    } else {
        Err(CliError::Other(format!("job {job} finished as {state}")))
    }
}

fn cmd_job(args: &[String]) -> CliResult {
    let id = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::Usage("missing job id".into()))?;
    let id: u64 = id
        .parse()
        .map_err(|_| CliError::Usage(format!("job id must be a number, got {id:?}")))?;
    let req = if args.iter().any(|a| a == "--cancel") {
        Request::Cancel { job: id }
    } else if args.iter().any(|a| a == "--resume") {
        Request::Resume { job: id }
    } else {
        Request::Status { job: id }
    };
    let addr = client_addr(args);
    let mut client = Client::connect(addr).map_err(|e| CliError::Other(format!("{addr}: {e}")))?;
    let resp = client
        .call(&req)
        .map_err(|e| CliError::Other(e.to_string()))?;
    println!("{resp}");
    Ok(())
}

fn cmd_fuzz(args: &[String]) -> CliResult {
    use sadp::fuzz::{check_layout, fault_seed_marker, run_campaign, CampaignConfig, Regime};

    if args.iter().any(|a| a == "--wire") {
        return cmd_fuzz_wire(args);
    }

    let mut cfg = CampaignConfig::default();
    if let Some(v) = flag_value(args, "--threads") {
        cfg.oracle.threads = v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
            CliError::Usage(format!("--threads wants a positive integer, got {v:?}"))
        })?;
    }
    cfg.oracle.fault_seed = u64_flag(args, "--faults")?;

    if let Some(path) = flag_value(args, "--replay") {
        let (text, imported) = ingest_file(path, args)?;
        print_import_summary(path, &imported);
        let (plane, netlist) = (imported.plane, imported.netlist);
        // Fault-mode fixtures carry their fault seed in a comment marker;
        // an explicit --faults flag overrides it.
        if cfg.oracle.fault_seed.is_none() {
            cfg.oracle.fault_seed = fault_seed_marker(&text);
        }
        return match check_layout(&plane, &netlist, &cfg.oracle) {
            Ok(stats) => {
                println!(
                    "{path}: clean ({} nets, {} routed)",
                    stats.nets, stats.routed
                );
                Ok(())
            }
            Err(v) => Err(CliError::Other(format!(
                "{path}: {}: {}",
                v.invariant.name(),
                v.detail
            ))),
        };
    }

    if let Some(v) = flag_value(args, "--seeds") {
        cfg.seeds = v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
            CliError::Usage(format!("--seeds wants a positive integer, got {v:?}"))
        })?;
    }
    if let Some(n) = u64_flag(args, "--start")? {
        cfg.start = n;
    }
    if let Some(v) = flag_value(args, "--regime") {
        let regime = Regime::parse(v).ok_or_else(|| {
            let names: Vec<&str> = Regime::ALL.iter().map(|r| r.name()).collect();
            CliError::Usage(format!(
                "unknown regime {v:?} (one of: {})",
                names.join(", ")
            ))
        })?;
        cfg.regimes = vec![regime];
    }
    cfg.minimize = args.iter().any(|a| a == "--minimize");
    let out_dir = flag_value(args, "--out").unwrap_or("fuzz-out");

    let started = std::time::Instant::now();
    let report = run_campaign(&cfg, |line| println!("{line}"));
    eprintln!(
        "campaign wall-clock: {:.1}s",
        started.elapsed().as_secs_f64()
    );

    println!(
        "checked {} instances ({} nets, {} routed)",
        report.instances, report.total_nets, report.total_routed
    );
    if report.is_clean() {
        println!("clean");
        return Ok(());
    }
    std::fs::create_dir_all(out_dir).map_err(|e| CliError::Other(format!("{out_dir}: {e}")))?;
    for failure in &report.failures {
        let stem = format!("{out_dir}/fuzz-{}-{}", failure.regime, failure.seed);
        println!(
            "FAIL {} seed {}: {}: {}",
            failure.regime,
            failure.seed,
            failure.violation.invariant.name(),
            failure.violation.detail
        );
        let layout = format!("{stem}.layout");
        std::fs::write(&layout, failure.fixture_text())
            .map_err(|e| CliError::Other(format!("{layout}: {e}")))?;
        println!("wrote {layout}");
        if let Some(trace) = failure_trace(failure) {
            let path = format!("{stem}.trace.jsonl");
            std::fs::write(&path, trace).map_err(|e| CliError::Other(format!("{path}: {e}")))?;
            println!("wrote {path}");
        }
    }
    Err(CliError::Other(format!(
        "{} invariant violations",
        report.failures.len()
    )))
}

/// The wire/ingest half of `sadp fuzz` (`--wire`): mutate protocol
/// request lines and DSN/DEF/LEF/layout inputs from seed corpora, and
/// require every parser — and, unless `--no-live`, a real in-process
/// daemon probed over TCP — to answer with no panic, no hang, and a
/// classified error. Failures are written to
/// `<out>/fuzz-wire-<regime>-<seed>.txt` as replayable artifacts.
fn cmd_fuzz_wire(args: &[String]) -> CliResult {
    use sadp::fuzz::{run_wire_campaign, WireCampaignConfig, WireRegime};

    let mut cfg = WireCampaignConfig::default();
    if let Some(v) = flag_value(args, "--seeds") {
        cfg.seeds = v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
            CliError::Usage(format!("--seeds wants a positive integer, got {v:?}"))
        })?;
    }
    if let Some(n) = u64_flag(args, "--start")? {
        cfg.start = n;
    }
    if let Some(v) = flag_value(args, "--regime") {
        let regime = WireRegime::parse(v).ok_or_else(|| {
            let names: Vec<&str> = WireRegime::ALL.iter().map(|r| r.name()).collect();
            CliError::Usage(format!(
                "unknown wire regime {v:?} (one of: {})",
                names.join(", ")
            ))
        })?;
        cfg.regimes = vec![regime];
    }
    cfg.live = !args.iter().any(|a| a == "--no-live");
    let out_dir = flag_value(args, "--out").unwrap_or("fuzz-out");

    let started = std::time::Instant::now();
    let report = run_wire_campaign(&cfg, |line| println!("{line}"));
    eprintln!(
        "campaign wall-clock: {:.1}s",
        started.elapsed().as_secs_f64()
    );

    println!(
        "checked {} inputs ({} accepted, {} rejected with classified errors)",
        report.instances, report.accepted, report.rejected
    );
    if report.is_clean() {
        println!("clean");
        return Ok(());
    }
    std::fs::create_dir_all(out_dir).map_err(|e| CliError::Other(format!("{out_dir}: {e}")))?;
    for failure in &report.failures {
        println!(
            "FAIL wire/{} seed {}: {}",
            failure.regime, failure.seed, failure.detail
        );
        let path = format!("{out_dir}/fuzz-wire-{}-{}.txt", failure.regime, failure.seed);
        std::fs::write(&path, failure.artifact_text())
            .map_err(|e| CliError::Other(format!("{path}: {e}")))?;
        println!("wrote {path}");
    }
    Err(CliError::Other(format!(
        "{} wire contract violations",
        report.failures.len()
    )))
}

/// The JSONL event trace of routing a failed instance (the minimised one
/// when shrinking ran), or `None` when routing itself panics.
fn failure_trace(failure: &sadp::fuzz::Failure) -> Option<String> {
    let (plane, netlist) = match &failure.shrunk {
        Some(s) => (s.plane.clone(), s.netlist.clone()),
        None => {
            let inst = sadp::fuzz::generate(failure.regime, failure.seed);
            (inst.plane, inst.netlist)
        }
    };
    std::panic::catch_unwind(move || {
        let mut plane = plane;
        let mut rec = BufferRecorder::with_flags(true, false);
        let mut router = Router::new(RouterConfig::paper_defaults());
        let _ = router.route_all_with(&mut plane, &netlist, &mut rec);
        events_to_jsonl(&rec.take_events())
    })
    .ok()
}

fn cmd_bench(args: &[String]) -> CliResult {
    let scale: f64 = flag_value(args, "--scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.1);
    let suite = BenchmarkSpec::paper_fixed_suite();
    let test: usize = match flag_value(args, "--test") {
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| (1..=suite.len()).contains(&n))
            .ok_or_else(|| {
                CliError::Usage(format!("--test wants 1..={}, got {v:?}", suite.len()))
            })?,
        None => 1,
    };
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100 + test as u64);
    let spec = suite
        .into_iter()
        .nth(test - 1)
        .expect("index validated above")
        .scaled(scale)
        .with_seed(seed);
    println!(
        "benchmark {}: {} nets on {}x{}x{} tracks",
        spec.name, spec.net_count, spec.width_tracks, spec.height_tracks, spec.layers
    );
    let (mut plane, netlist) = spec.generate();
    let (trace_path, profile, mut rec) = recorder_from(args);
    let mut router = Router::new(config_from(args)?);
    let report = router.route_all_with(&mut plane, &netlist, &mut rec);
    println!("{report}");
    if let Some(file) = trace_path {
        write_trace(file, &mut rec)?;
    }
    if profile {
        println!("\n{}", rec.profile.table());
    }
    if report.cut_conflicts != 0 {
        return Err(CliError::Routing(
            "cut conflicts remained (this should be impossible)".into(),
        ));
    }
    Ok(())
}
