//! # sadp — overlay-aware detailed routing for SADP lithography (cut process)
//!
//! Facade crate re-exporting the public API of the workspace: a from-scratch
//! reproduction of Liu, Fang & Chang, *"Overlay-Aware Detailed Routing for
//! Self-Aligned Double Patterning Lithography Using the Cut Process"*
//! (DAC 2014 / TCAD 2016).
//!
//! ## Quickstart
//!
//! ```
//! use sadp::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A tiny 3-layer plane with two nets.
//! let rules = DesignRules::node_10nm();
//! let mut plane = RoutingPlane::new(3, 32, 32, rules)?;
//! let mut netlist = Netlist::new();
//! netlist.add_two_pin("n0", GridPoint::new(Layer(0), 2, 2), GridPoint::new(Layer(0), 20, 9));
//! netlist.add_two_pin("n1", GridPoint::new(Layer(0), 2, 4), GridPoint::new(Layer(0), 20, 4));
//!
//! let mut router = Router::new(RouterConfig::paper_defaults());
//! let report = router.route_all(&mut plane, &netlist);
//! assert_eq!(report.hard_overlay_violations, 0);
//! assert_eq!(report.cut_conflicts, 0);
//! # Ok(())
//! # }
//! ```
//!
//! See the crate-level docs of the member crates for details:
//! [`sadp_geom`], [`sadp_grid`], [`sadp_scenario`], [`sadp_graph`],
//! [`sadp_decomp`], [`sadp_core`], [`sadp_baselines`], [`sadp_obs`],
//! [`sadp_fuzz`], [`sadp_ingest`], [`sadp_serve`].

pub use sadp_baselines as baselines;
pub use sadp_core as core;
pub use sadp_decomp as decomp;
pub use sadp_fuzz as fuzz;
pub use sadp_geom as geom;
pub use sadp_graph as graph;
pub use sadp_grid as grid;
pub use sadp_ingest as ingest;
pub use sadp_obs as obs;
pub use sadp_scenario as scenario;
pub use sadp_serve as serve;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use sadp_core::{Router, RouterConfig, RoutingReport};
    pub use sadp_geom::{DesignRules, GridPoint, Layer, Nm, TrackRect};
    pub use sadp_grid::{Net, NetId, Netlist, RoutingPlane};
    pub use sadp_obs::{BufferRecorder, NoopRecorder, Recorder, StageProfile};
    pub use sadp_scenario::{Assignment, Color, ScenarioKind};
}
