//! Comparative integration tests: the qualitative claims of Tables III/IV
//! must hold on our synthetic instances — our router achieves zero
//! conflicts, the smallest overlay and the highest routability.

use sadp::baselines::{BaselineKind, BaselineRouter};
use sadp::prelude::*;
use sadp_grid::BenchmarkSpec;

fn spec() -> BenchmarkSpec {
    BenchmarkSpec::paper_fixed_suite().remove(0).scaled(0.08)
}

fn run_ours(spec: &BenchmarkSpec) -> RoutingReport {
    let (mut plane, netlist) = spec.generate();
    let mut router = Router::new(RouterConfig::paper_defaults());
    router.route_all(&mut plane, &netlist)
}

fn run_baseline(kind: BaselineKind, spec: &BenchmarkSpec) -> RoutingReport {
    let (mut plane, netlist) = spec.generate();
    let mut router = BaselineRouter::new(kind);
    router.route_all(&mut plane, &netlist)
}

#[test]
fn ours_beats_gao_pan_on_overlay_and_conflicts() {
    let spec = spec();
    let ours = run_ours(&spec);
    let theirs = run_baseline(BaselineKind::GaoPanTrim, &spec);
    assert_eq!(ours.cut_conflicts, 0);
    assert!(
        ours.overlay_units * 2 < theirs.overlay_units,
        "ours {} vs [11] {}",
        ours.overlay_units,
        theirs.overlay_units
    );
    assert!(ours.routability() > theirs.routability());
}

#[test]
fn ours_beats_cut_no_merge() {
    let spec = spec();
    let ours = run_ours(&spec);
    let theirs = run_baseline(BaselineKind::CutNoMerge, &spec);
    assert_eq!(ours.cut_conflicts, 0);
    assert!(theirs.cut_conflicts > 0, "[16] leaves conflicts behind");
    assert!(ours.overlay_units < theirs.overlay_units);
    assert!(ours.routability() > theirs.routability());
}

#[test]
fn ours_beats_du_on_the_multi_candidate_suite() {
    let spec = BenchmarkSpec::paper_multi_suite().remove(0).scaled(0.08);
    let ours = run_ours(&spec);
    let theirs = run_baseline(BaselineKind::DuTrim, &spec);
    assert!(ours.routability() > theirs.routability());
    assert!(
        ours.overlay_units * 2 < theirs.overlay_units,
        "ours {} vs [10] {}",
        ours.overlay_units,
        theirs.overlay_units
    );
}

#[test]
fn du_recheck_work_grows_superlinearly() {
    // The per-candidate full-layout recheck makes \[10\]'s cost grow roughly
    // with the square of the instance (the source of the paper's 2520x
    // speedup); the fragment-pair work counter is a deterministic proxy.
    let work = |scale: f64| {
        let spec = BenchmarkSpec::paper_multi_suite().remove(0).scaled(scale);
        let (mut plane, netlist) = spec.generate();
        let mut router = BaselineRouter::new(BaselineKind::DuTrim);
        router.route_all(&mut plane, &netlist);
        (netlist.len() as f64, router.recheck_work() as f64)
    };
    let (n_small, w_small) = work(0.04);
    let (n_large, w_large) = work(0.16);
    let n_ratio = n_large / n_small;
    let w_ratio = w_large / w_small.max(1.0);
    assert!(
        w_ratio > n_ratio * 1.5,
        "recheck work should grow superlinearly: nets x{n_ratio:.1}, work x{w_ratio:.1}"
    );
}

#[test]
fn trim_baseline_cannot_decompose_odd_cycles() {
    // The odd-cycle block of Fig. 21, in a two-track channel so detouring
    // is impossible: ours routes all three nets via merge-and-cut; the
    // trim baseline must drop a net or record a line-end conflict.
    let mut netlist = Netlist::new();
    let p = |x, y| GridPoint::new(Layer(0), x, y);
    netlist.add_two_pin("A", p(2, 5), p(6, 5));
    netlist.add_two_pin("B", p(7, 5), p(12, 5));
    netlist.add_two_pin("C", p(2, 6), p(12, 6));

    let channel = |plane: &mut RoutingPlane| {
        plane.add_blockage(Layer(0), TrackRect::new(0, 0, 23, 4));
        plane.add_blockage(Layer(0), TrackRect::new(0, 7, 23, 15));
    };
    let mut plane = RoutingPlane::new(1, 24, 16, DesignRules::node_10nm()).unwrap();
    channel(&mut plane);
    let mut ours = Router::new(RouterConfig {
        pin_guard: 0.0,
        ..RouterConfig::paper_defaults()
    });
    let ours_report = ours.route_all(&mut plane, &netlist);
    assert_eq!(ours_report.routed_nets, 3);
    assert_eq!(ours_report.cut_conflicts, 0);

    let mut plane = RoutingPlane::new(1, 24, 16, DesignRules::node_10nm()).unwrap();
    channel(&mut plane);
    let mut gp = BaselineRouter::new(BaselineKind::GaoPanTrim);
    let gp_report = gp.route_all(&mut plane, &netlist);
    assert!(
        gp_report.routed_nets < 3 || gp_report.cut_conflicts > 0,
        "the trim process cannot handle the merge-and-cut cycle"
    );
}
