//! Checkpoint/resume equivalence: a run killed after any checkpoint
//! write and resumed from that snapshot on a fresh process produces the
//! byte-identical final result. Resuming replays the journal through the
//! normal commit pipeline, so graph state, scan order, and occupancy all
//! come out exactly as in the uninterrupted run.

use sadp::core::Snapshot;
use sadp::grid::BenchmarkSpec;
use sadp::prelude::*;
use sadp_geom::TrackRect;
use std::time::Duration;

type RunResult = (
    RoutingReport,
    Vec<Vec<(u32, Color, Vec<TrackRect>)>>,
    Vec<NetId>,
    (usize, usize, usize),
);

fn observe(mut report: RoutingReport, router: &Router, plane: &RoutingPlane) -> RunResult {
    report.cpu = Duration::ZERO;
    let patterns = (0..plane.layers())
        .map(|l| router.patterns_on_layer(Layer(l)))
        .collect();
    (report, patterns, router.failed().to_vec(), plane.usage())
}

/// One uninterrupted run, capturing every checkpoint snapshot on the way.
fn reference_run(spec: &BenchmarkSpec) -> (RunResult, Vec<String>) {
    let (mut plane, netlist) = spec.generate();
    let mut router = Router::new(RouterConfig::paper_defaults());
    let mut snaps: Vec<String> = Vec::new();
    let mut sink = |s: &str| snaps.push(s.to_string());
    let report = router
        .route_all_recoverable(
            &mut plane,
            &netlist,
            &mut NoopRecorder,
            None,
            Some(&mut sink),
        )
        .expect("clean run");
    (observe(report, &router, &plane), snaps)
}

/// Resumes `spec` from `snapshot` text on a completely fresh router and
/// plane — exactly what a new process does after the old one was killed.
fn resumed_run(spec: &BenchmarkSpec, snapshot: &str) -> RunResult {
    let snap = Snapshot::parse(snapshot).expect("snapshot parses");
    let (mut plane, netlist) = spec.generate();
    let mut router = Router::new(RouterConfig::paper_defaults());
    let report = router
        .route_all_recoverable(&mut plane, &netlist, &mut NoopRecorder, Some(&snap), None)
        .expect("resumed run");
    observe(report, &router, &plane)
}

#[test]
fn resume_from_any_checkpoint_is_byte_identical() {
    // Wide enough for the banded schedule, so snapshots land both at
    // forced band folds and at throttled serial/boundary ticks.
    let spec = BenchmarkSpec::new("ckpt-wide", 110, 400, 120).with_seed(11);
    let (reference, snaps) = reference_run(&spec);
    assert!(
        snaps.len() >= 2,
        "the run should checkpoint more than once (got {})",
        snaps.len()
    );

    // Kill-points: right after the first, a middle, and the final write.
    for idx in [0, snaps.len() / 2, snaps.len() - 1] {
        let resumed = resumed_run(&spec, &snaps[idx]);
        assert_eq!(
            reference, resumed,
            "resume from checkpoint #{idx} diverged from the uninterrupted run"
        );
    }
}

#[test]
fn mid_run_snapshot_actually_skips_work() {
    // The resumed run must not silently re-route everything: a snapshot
    // taken mid-run already carries committed nets.
    let spec = BenchmarkSpec::new("ckpt-wide", 110, 400, 120).with_seed(11);
    let (_, snaps) = reference_run(&spec);
    let mid = Snapshot::parse(&snaps[snaps.len() / 2]).expect("snapshot parses");
    assert!(
        mid.committed() > 0,
        "mid-run snapshot should carry committed nets"
    );
}

#[test]
fn snapshot_rejects_a_foreign_layout() {
    let spec = BenchmarkSpec::new("ckpt-wide", 110, 400, 120).with_seed(11);
    let (_, snaps) = reference_run(&spec);
    let snap = Snapshot::parse(snaps.last().unwrap()).expect("snapshot parses");

    let other = BenchmarkSpec::new("ckpt-other", 40, 64, 64).with_seed(7);
    let (mut plane, netlist) = other.generate();
    let mut router = Router::new(RouterConfig::paper_defaults());
    let err = router
        .route_all_recoverable(&mut plane, &netlist, &mut NoopRecorder, Some(&snap), None)
        .expect_err("fingerprint mismatch must be detected");
    assert!(
        err.to_string().contains("fingerprint"),
        "unexpected error: {err}"
    );
}

/// Cancellation determinism: a session cancelled mid-run, snapshotted,
/// and resumed in a fresh session finishes byte-identical to the
/// uninterrupted run — same report, geometry, colors and occupancy.
/// The resumed leg re-plans only the *remaining* nets, so its
/// scheduling bookkeeping (`band_merged`/`wave_scheduled` lines) may
/// regroup; the `net_routed` commit record must still cover exactly the
/// uninterrupted run's nets, each with the same attempt count.
#[test]
fn cancelled_session_resumed_is_byte_identical_to_uninterrupted() {
    use sadp::core::{RoutingSession, SessionError, SessionStatus, StepBudget};
    use sadp::obs::events_to_jsonl;

    let spec = BenchmarkSpec::new("ckpt-wide", 110, 400, 120).with_seed(11);
    let mut config = RouterConfig::paper_defaults();
    config.threads = 2;

    // Uninterrupted reference, streamed through the same session API.
    let (plane, netlist) = spec.generate();
    let mut session = RoutingSession::create(config.clone(), plane, netlist, true, false)
        .expect("session creates");
    let mut want_events = Vec::new();
    let want_report = loop {
        match session.advance(StepBudget::steps(5)) {
            SessionStatus::Running | SessionStatus::CheckpointReady => {
                want_events.extend(session.drain_events());
            }
            SessionStatus::Done(report) => {
                want_events.extend(session.drain_events());
                break *report;
            }
            SessionStatus::Failed(e) => panic!("reference failed: {e}"),
        }
    };
    // The stage profile counts work done in *this* process; a resumed
    // session replays the journal instead of searching, so its profile
    // legitimately differs. Everything else must be byte-identical.
    let mut want_report = want_report;
    want_report.profile = StageProfile::default();
    let want = observe(want_report, session.router(), session.plane());
    let want_trace = events_to_jsonl(&want_events);

    // Cancel after a third of the schedule, snapshot, resume fresh.
    let (plane, netlist) = spec.generate();
    let mut first = RoutingSession::create(config.clone(), plane, netlist, true, false)
        .expect("session creates");
    let cancel_at = first.progress().1 / 3;
    let mut events = Vec::new();
    while first.progress().0 < cancel_at {
        match first.advance(StepBudget::steps(5)) {
            SessionStatus::Running | SessionStatus::CheckpointReady => {
                events.extend(first.drain_events());
            }
            SessionStatus::Done(_) => panic!("cancelled too late to be interesting"),
            SessionStatus::Failed(e) => panic!("first leg failed: {e}"),
        }
    }
    first.cancel();
    // A cancelled session refuses to advance but still snapshots.
    match first.advance(StepBudget::unbounded()) {
        SessionStatus::Failed(SessionError::Cancelled) => {}
        other => panic!("cancelled session advanced: {other:?}"),
    }
    let snapshot = first.snapshot();
    drop(first);

    let snap = Snapshot::parse(&snapshot).expect("snapshot parses");
    let (plane, netlist) = spec.generate();
    let mut second = RoutingSession::resume(config, plane, netlist, &snap, true, false)
        .expect("session resumes");
    let report = loop {
        match second.advance(StepBudget::steps(5)) {
            SessionStatus::Running | SessionStatus::CheckpointReady => {
                events.extend(second.drain_events());
            }
            SessionStatus::Done(report) => {
                events.extend(second.drain_events());
                break *report;
            }
            SessionStatus::Failed(e) => panic!("resumed leg failed: {e}"),
        }
    };
    let mut report = report;
    report.profile = StageProfile::default();
    let got = observe(report, second.router(), second.plane());
    assert_eq!(want, got, "cancel + resume diverged from uninterrupted run");
    // Replay emits no events, so the spliced stream holds each commit
    // exactly once; the lines are byte-equal per net (attempts, flips).
    let commits = |jsonl: &str| -> Vec<String> {
        let mut lines: Vec<String> = jsonl
            .lines()
            .filter(|l| l.contains("\"event\":\"net_routed\""))
            .map(str::to_string)
            .collect();
        lines.sort();
        lines
    };
    assert_eq!(
        commits(&want_trace),
        commits(&events_to_jsonl(&events)),
        "spliced commit record diverged"
    );
}
