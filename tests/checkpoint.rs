//! Checkpoint/resume equivalence: a run killed after any checkpoint
//! write and resumed from that snapshot on a fresh process produces the
//! byte-identical final result. Resuming replays the journal through the
//! normal commit pipeline, so graph state, scan order, and occupancy all
//! come out exactly as in the uninterrupted run.

use sadp::core::Snapshot;
use sadp::grid::BenchmarkSpec;
use sadp::prelude::*;
use sadp_geom::TrackRect;
use std::time::Duration;

type RunResult = (
    RoutingReport,
    Vec<Vec<(u32, Color, Vec<TrackRect>)>>,
    Vec<NetId>,
    (usize, usize, usize),
);

fn observe(mut report: RoutingReport, router: &Router, plane: &RoutingPlane) -> RunResult {
    report.cpu = Duration::ZERO;
    let patterns = (0..plane.layers())
        .map(|l| router.patterns_on_layer(Layer(l)))
        .collect();
    (report, patterns, router.failed().to_vec(), plane.usage())
}

/// One uninterrupted run, capturing every checkpoint snapshot on the way.
fn reference_run(spec: &BenchmarkSpec) -> (RunResult, Vec<String>) {
    let (mut plane, netlist) = spec.generate();
    let mut router = Router::new(RouterConfig::paper_defaults());
    let mut snaps: Vec<String> = Vec::new();
    let mut sink = |s: &str| snaps.push(s.to_string());
    let report = router
        .route_all_recoverable(
            &mut plane,
            &netlist,
            &mut NoopRecorder,
            None,
            Some(&mut sink),
        )
        .expect("clean run");
    (observe(report, &router, &plane), snaps)
}

/// Resumes `spec` from `snapshot` text on a completely fresh router and
/// plane — exactly what a new process does after the old one was killed.
fn resumed_run(spec: &BenchmarkSpec, snapshot: &str) -> RunResult {
    let snap = Snapshot::parse(snapshot).expect("snapshot parses");
    let (mut plane, netlist) = spec.generate();
    let mut router = Router::new(RouterConfig::paper_defaults());
    let report = router
        .route_all_recoverable(&mut plane, &netlist, &mut NoopRecorder, Some(&snap), None)
        .expect("resumed run");
    observe(report, &router, &plane)
}

#[test]
fn resume_from_any_checkpoint_is_byte_identical() {
    // Wide enough for the banded schedule, so snapshots land both at
    // forced band folds and at throttled serial/boundary ticks.
    let spec = BenchmarkSpec::new("ckpt-wide", 110, 400, 120).with_seed(11);
    let (reference, snaps) = reference_run(&spec);
    assert!(
        snaps.len() >= 2,
        "the run should checkpoint more than once (got {})",
        snaps.len()
    );

    // Kill-points: right after the first, a middle, and the final write.
    for idx in [0, snaps.len() / 2, snaps.len() - 1] {
        let resumed = resumed_run(&spec, &snaps[idx]);
        assert_eq!(
            reference, resumed,
            "resume from checkpoint #{idx} diverged from the uninterrupted run"
        );
    }
}

#[test]
fn mid_run_snapshot_actually_skips_work() {
    // The resumed run must not silently re-route everything: a snapshot
    // taken mid-run already carries committed nets.
    let spec = BenchmarkSpec::new("ckpt-wide", 110, 400, 120).with_seed(11);
    let (_, snaps) = reference_run(&spec);
    let mid = Snapshot::parse(&snaps[snaps.len() / 2]).expect("snapshot parses");
    assert!(
        mid.committed() > 0,
        "mid-run snapshot should carry committed nets"
    );
}

#[test]
fn snapshot_rejects_a_foreign_layout() {
    let spec = BenchmarkSpec::new("ckpt-wide", 110, 400, 120).with_seed(11);
    let (_, snaps) = reference_run(&spec);
    let snap = Snapshot::parse(snaps.last().unwrap()).expect("snapshot parses");

    let other = BenchmarkSpec::new("ckpt-other", 40, 64, 64).with_seed(7);
    let (mut plane, netlist) = other.generate();
    let mut router = Router::new(RouterConfig::paper_defaults());
    let err = router
        .route_all_recoverable(&mut plane, &netlist, &mut NoopRecorder, Some(&snap), None)
        .expect_err("fingerprint mismatch must be detected");
    assert!(
        err.to_string().contains("fingerprint"),
        "unexpected error: {err}"
    );
}
