//! Keeps `scripts/ci-smoke.sh` honest: the script is the single owner
//! of the CI smoke steps, so its own plumbing (binary resolution, usage
//! errors, the corpus subcommand with its per-format vacuity guard)
//! gets the same test coverage as the code it drives.
//!
//! Only the fast `corpus` subcommand runs here — the trace/fault/serve
//! smokes route a ~400-track benchmark and are exercised by CI itself.

use std::process::Command;

fn smoke() -> Command {
    let mut cmd = Command::new("bash");
    cmd.arg(concat!(env!("CARGO_MANIFEST_DIR"), "/scripts/ci-smoke.sh"));
    cmd.env("SADP_BIN", env!("CARGO_BIN_EXE_sadp"));
    cmd
}

#[test]
fn corpus_smoke_replays_native_and_imported_fixtures() {
    let out = smoke().arg("corpus").output().expect("bash runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout: {stdout}\nstderr: {stderr}");
    // The guard counted at least one imported fixture per format.
    assert!(stdout.contains("corpus smoke: OK ("), "{stdout}");
    // Both imported formats actually replayed.
    assert!(stdout.contains("led-matrix.dsn: clean ("), "{stdout}");
    assert!(stdout.contains("macro-block.def: clean ("), "{stdout}");
}

#[test]
fn an_unknown_subcommand_is_a_usage_error() {
    let out = smoke().arg("frobnicate").output().expect("bash runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn a_missing_binary_is_reported_not_hidden() {
    let out = smoke()
        .arg("corpus")
        .env("SADP_BIN", "/nonexistent/sadp")
        .output()
        .expect("bash runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("binary not found"), "{stderr}");
    assert!(stderr.contains("SADP_BIN"), "{stderr}");
}
