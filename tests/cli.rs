//! Smoke tests for the `sadp` command-line binary.

use std::process::Command;

fn sadp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sadp"))
}

#[test]
fn verify_accepts_a_good_fixture() {
    let out = sadp()
        .args(["verify", "fixtures/odd_cycle.layout"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout: {stdout}");
    assert!(stdout.contains("verdict: decomposable"), "{stdout}");
    assert!(stdout.contains("0 cut conflicts"));
}

#[test]
fn route_writes_svg_and_masks() {
    let dir = std::env::temp_dir().join("sadp_cli_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let svg_dir = dir.join("svg");
    let masks = dir.join("masks.txt");
    let out = sadp()
        .args([
            "route",
            "fixtures/clock_tree.layout",
            "--svg",
            svg_dir.to_str().unwrap(),
            "--masks",
            masks.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let svg = std::fs::read_to_string(svg_dir.join("m1.svg")).expect("m1.svg written");
    assert!(svg.starts_with("<svg"));
    let mask_text = std::fs::read_to_string(&masks).expect("masks written");
    assert!(mask_text.lines().any(|l| l.starts_with("core ")));
    assert!(mask_text.lines().any(|l| l.starts_with("cut ")));
}

#[test]
fn bench_subcommand_reports_conflict_free() {
    let out = sadp()
        .args(["bench", "--scale", "0.04"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("0 cut conflicts"), "{stdout}");
}

#[test]
fn trace_matches_golden_jsonl() {
    // The JSONL schema is a stable interface: field names, order and
    // formatting are pinned by `fixtures/odd_cycle.trace.jsonl`. A diff
    // here means the trace format changed and the golden file (plus any
    // downstream consumers) must be updated deliberately.
    let dir = std::env::temp_dir().join("sadp_cli_trace_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.jsonl");
    let out = sadp()
        .args([
            "route",
            "fixtures/odd_cycle.layout",
            "--trace",
            trace.to_str().unwrap(),
            "--profile",
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    // The profile table prints every stage with its work count.
    for stage in ["search", "commit", "recolor", "ripup", "merge", "decompose"] {
        assert!(
            stdout.contains(stage),
            "profile table missing {stage}: {stdout}"
        );
    }
    let got = std::fs::read_to_string(&trace).expect("trace written");
    let want = std::fs::read_to_string("fixtures/odd_cycle.trace.jsonl").expect("golden exists");
    assert_eq!(got, want, "trace JSONL diverged from the golden file");
}

#[test]
fn bad_usage_fails_with_code_2() {
    let out = sadp().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"));
}

#[test]
fn unknown_command_fails_with_code_2() {
    let out = sadp().arg("frobnicate").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn missing_file_fails_with_input_code_3() {
    let out = sadp()
        .args(["route", "/nonexistent.layout"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"));
}

#[test]
fn malformed_layout_fails_with_input_code_3() {
    let dir = std::env::temp_dir().join("sadp_cli_badlayout");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.layout");
    std::fs::write(&bad, "this is not a layout file\n").unwrap();
    let out = sadp()
        .args(["route", bad.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
    // A parse failure is reported, never a panic backtrace.
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn checkpoint_then_resume_reproduces_the_run() {
    let dir = std::env::temp_dir().join("sadp_cli_ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("run.ckpt");
    let first = sadp()
        .args([
            "route",
            "fixtures/odd_cycle.layout",
            "--checkpoint",
            snap.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(first.status.success());
    let text = std::fs::read_to_string(&snap).expect("checkpoint written");
    assert!(text.starts_with("SADPCKPT v2"), "{text}");

    let resumed = sadp()
        .args([
            "route",
            "fixtures/odd_cycle.layout",
            "--resume",
            snap.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(resumed.status.success());
    // Everything but the wall-clock line must match byte for byte.
    let strip_cpu = |bytes: &[u8]| -> String {
        String::from_utf8_lossy(bytes)
            .lines()
            .filter(|l| !l.starts_with("cpu "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_cpu(&first.stdout),
        strip_cpu(&resumed.stdout),
        "resumed stdout diverged"
    );
}

#[test]
fn resume_with_wrong_layout_fails_with_routing_code_4() {
    let dir = std::env::temp_dir().join("sadp_cli_ckpt_mismatch");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("run.ckpt");
    let first = sadp()
        .args([
            "route",
            "fixtures/odd_cycle.layout",
            "--checkpoint",
            snap.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(first.status.success());
    let out = sadp()
        .args([
            "route",
            "fixtures/clock_tree.layout",
            "--resume",
            snap.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(4));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fingerprint"), "{stderr}");
}

#[test]
fn foreign_checkpoint_version_is_rejected_with_a_versioned_error() {
    let dir = std::env::temp_dir().join("sadp_cli_ckpt_v1");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("old.ckpt");
    std::fs::write(&snap, "SADPCKPT v1\nchecksum 0\nend\n").unwrap();
    let out = sadp()
        .args([
            "route",
            "fixtures/odd_cycle.layout",
            "--resume",
            snap.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The message names the version it found, the version it wants, and
    // what to do about it.
    assert!(stderr.contains("SADPCKPT v1"), "{stderr}");
    assert!(stderr.contains("SADPCKPT v2"), "{stderr}");
    assert!(stderr.contains("re-route"), "{stderr}");
}

#[test]
fn error_messages_are_pinned_and_actionable() {
    // The user-facing error strings are an interface: scripts and
    // humans match on them. Each case pins the load-bearing phrases —
    // what failed plus what to do — so a reword is a deliberate act.
    let dir = std::env::temp_dir().join("sadp_cli_errmsg");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // A malformed layout names the offending line.
    let bad = dir.join("bad.layout");
    std::fs::write(&bad, "plane 3 32 32\nnet broken\n").unwrap();
    let out = sadp()
        .args(["route", bad.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "{stderr}");

    // A corrupt checkpoint is reported as such, not as a parse error
    // deeper in.
    let snap = dir.join("corrupt.ckpt");
    let first = sadp()
        .args([
            "route",
            "fixtures/odd_cycle.layout",
            "--checkpoint",
            snap.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(first.status.success());
    let text = std::fs::read_to_string(&snap).unwrap();
    let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
    std::fs::write(&snap, truncated).unwrap();
    let out = sadp()
        .args([
            "route",
            "fixtures/odd_cycle.layout",
            "--resume",
            snap.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("checksum") || stderr.contains("truncated"),
        "{stderr}"
    );

    // Resuming against the wrong layout names the fingerprint mismatch
    // (pinned in resume_with_wrong_layout_fails_with_routing_code_4);
    // a submit of garbage to a daemon names the layout parse failure.
    let out = sadp()
        .args(["submit", bad.to_str().unwrap(), "--addr", "127.0.0.1:1"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "connection refused is exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("127.0.0.1:1"),
        "names the address: {stderr}"
    );
}

#[test]
fn fault_injection_flag_keeps_the_route_conflict_free() {
    // Faults are a recovery test-bench: the injected panics and budget
    // failures must degrade gracefully, never crash the CLI.
    let out = sadp()
        .args([
            "bench",
            "--scale",
            "0.04",
            "--faults",
            "1",
            "--threads",
            "2",
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("0 cut conflicts"), "{stdout}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn budget_flags_degrade_gracefully() {
    let out = sadp()
        .args(["bench", "--scale", "0.04", "--net-nodes", "5"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(
        stdout.contains("over search budget"),
        "expected budget-failure line: {stdout}"
    );
}
