//! Smoke tests for the `sadp` command-line binary.

use std::process::Command;

fn sadp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sadp"))
}

#[test]
fn verify_accepts_a_good_fixture() {
    let out = sadp()
        .args(["verify", "fixtures/odd_cycle.layout"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout: {stdout}");
    assert!(stdout.contains("verdict: decomposable"), "{stdout}");
    assert!(stdout.contains("0 cut conflicts"));
}

#[test]
fn route_writes_svg_and_masks() {
    let dir = std::env::temp_dir().join("sadp_cli_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let svg_dir = dir.join("svg");
    let masks = dir.join("masks.txt");
    let out = sadp()
        .args([
            "route",
            "fixtures/clock_tree.layout",
            "--svg",
            svg_dir.to_str().unwrap(),
            "--masks",
            masks.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let svg = std::fs::read_to_string(svg_dir.join("m1.svg")).expect("m1.svg written");
    assert!(svg.starts_with("<svg"));
    let mask_text = std::fs::read_to_string(&masks).expect("masks written");
    assert!(mask_text.lines().any(|l| l.starts_with("core ")));
    assert!(mask_text.lines().any(|l| l.starts_with("cut ")));
}

#[test]
fn bench_subcommand_reports_conflict_free() {
    let out = sadp()
        .args(["bench", "--scale", "0.04"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("0 cut conflicts"), "{stdout}");
}

#[test]
fn trace_matches_golden_jsonl() {
    // The JSONL schema is a stable interface: field names, order and
    // formatting are pinned by `fixtures/odd_cycle.trace.jsonl`. A diff
    // here means the trace format changed and the golden file (plus any
    // downstream consumers) must be updated deliberately.
    let dir = std::env::temp_dir().join("sadp_cli_trace_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.jsonl");
    let out = sadp()
        .args([
            "route",
            "fixtures/odd_cycle.layout",
            "--trace",
            trace.to_str().unwrap(),
            "--profile",
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    // The profile table prints every stage with its work count.
    for stage in ["search", "commit", "recolor", "ripup", "merge", "decompose"] {
        assert!(
            stdout.contains(stage),
            "profile table missing {stage}: {stdout}"
        );
    }
    let got = std::fs::read_to_string(&trace).expect("trace written");
    let want = std::fs::read_to_string("fixtures/odd_cycle.trace.jsonl").expect("golden exists");
    assert_eq!(got, want, "trace JSONL diverged from the golden file");
}

#[test]
fn bad_usage_fails_with_code_2() {
    let out = sadp().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"));
}

#[test]
fn missing_file_fails_cleanly() {
    let out = sadp()
        .args(["route", "/nonexistent.layout"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"));
}
