//! Routing → pixel decomposition: the router's outputs must survive the
//! independent mask-synthesis oracle.

use sadp::decomp::{ColoredPattern, CutSimulator};
use sadp::prelude::*;
use sadp_grid::BenchmarkSpec;

fn decompose_layer(router: &Router, layer: Layer) -> Option<sadp::decomp::Decomposition> {
    let patterns: Vec<ColoredPattern> = router
        .patterns_on_layer(layer)
        .into_iter()
        .map(|(net, color, rects)| ColoredPattern::new(net, color, rects))
        .collect();
    if patterns.is_empty() {
        return None;
    }
    let sim = CutSimulator::new(DesignRules::node_10nm());
    Some(sim.run(&patterns))
}

#[test]
fn small_benchmark_decomposes_without_destroying_targets() {
    let spec = BenchmarkSpec::paper_fixed_suite().remove(0).scaled(0.04);
    let (mut plane, netlist) = spec.generate();
    let mut router = Router::new(RouterConfig::paper_defaults());
    let report = router.route_all(&mut plane, &netlist);
    assert_eq!(report.cut_conflicts, 0);

    for layer in 0..3 {
        let Some(d) = decompose_layer(&router, Layer(layer)) else {
            continue;
        };
        // The spacer must never overlap a target pattern: every routed
        // wire prints.
        assert_eq!(
            d.report.spacer_violations,
            0,
            "layer M{} destroys targets",
            layer + 1
        );
    }
}

#[test]
fn parallel_bus_decomposes_cleanly() {
    // An alternating 6-wire bus: the canonical SADP use case must produce
    // zero overlay and zero conflicts end to end.
    let mut plane = RoutingPlane::new(1, 40, 24, DesignRules::node_10nm()).unwrap();
    let mut netlist = Netlist::new();
    for i in 0..6 {
        netlist.add_two_pin(
            format!("bus{i}"),
            GridPoint::new(Layer(0), 4, 6 + i),
            GridPoint::new(Layer(0), 34, 6 + i),
        );
    }
    let mut router = Router::new(RouterConfig {
        pin_guard: 0.0,
        ..RouterConfig::paper_defaults()
    });
    let report = router.route_all(&mut plane, &netlist);
    assert_eq!(report.routed_nets, 6);
    assert_eq!(report.overlay_units, 0, "an alternating bus has no overlay");

    let d = decompose_layer(&router, Layer(0)).expect("patterns exist");
    assert_eq!(d.report.side_overlay_px, 0);
    assert!(d.report.is_clean());

    // Colors must alternate along the bus.
    let colors: Vec<_> = (0..6)
        .map(|i| router.color_of(NetId(i), Layer(0)).expect("routed"))
        .collect();
    for w in colors.windows(2) {
        assert_ne!(w[0], w[1], "adjacent bus wires share a mask");
    }
}

#[test]
fn tip_to_side_layout_measures_one_unit() {
    // A T-shaped meeting: the unavoidable type 2-b scenario must measure
    // exactly one friendly unit in the simulator when colored same.
    let mut plane = RoutingPlane::new(1, 24, 24, DesignRules::node_10nm()).unwrap();
    let mut netlist = Netlist::new();
    netlist.add_two_pin(
        "bar",
        GridPoint::new(Layer(0), 2, 4),
        GridPoint::new(Layer(0), 20, 4),
    );
    netlist.add_two_pin(
        "stem",
        GridPoint::new(Layer(0), 10, 6),
        GridPoint::new(Layer(0), 10, 18),
    );
    let mut router = Router::new(RouterConfig {
        pin_guard: 0.0,
        ..RouterConfig::paper_defaults()
    });
    let report = router.route_all(&mut plane, &netlist);
    assert_eq!(report.routed_nets, 2);

    let d = decompose_layer(&router, Layer(0)).expect("patterns exist");
    assert!(d.report.side_overlay_units() <= 2);
    assert_eq!(d.report.hard_overlay_runs, 0);
    assert_eq!(d.report.cut_conflicts, 0);
}
