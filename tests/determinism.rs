//! The parallel driver's determinism contract: for any thread count the
//! routed result is *identical* to the serial run — same report, same
//! paths, same colors, same failures. The band partition and the commit
//! order depend only on the plane geometry, never on scheduling.

use sadp::core::FaultPlan;
use sadp::grid::{BandPlan, BenchmarkSpec};
use sadp::obs::events_to_jsonl;
use sadp::prelude::*;
use sadp_geom::TrackRect;
use std::time::Duration;

/// Everything observable about one routed run.
type RunResult = (
    RoutingReport,
    Vec<Vec<(u32, Color, Vec<TrackRect>)>>,
    Vec<NetId>,
    (usize, usize, usize),
);

/// Routes `spec` under `config` and returns everything observable.
fn route_config(spec: &BenchmarkSpec, config: RouterConfig) -> RunResult {
    let (mut plane, netlist) = spec.generate();
    let mut router = Router::new(config);
    let mut report = router.route_all(&mut plane, &netlist);
    // The report compares CPU time too; zero it so only results count.
    report.cpu = Duration::ZERO;
    let patterns = (0..plane.layers())
        .map(|l| router.patterns_on_layer(Layer(l)))
        .collect();
    (report, patterns, router.failed().to_vec(), plane.usage())
}

/// Routes `spec` with `threads` workers and returns everything observable.
fn route_with(spec: &BenchmarkSpec, threads: usize) -> RunResult {
    let mut config = RouterConfig::paper_defaults();
    config.threads = threads;
    route_config(spec, config)
}

#[test]
fn sharded_run_is_byte_identical_to_serial() {
    // Wide enough for a multi-band partition: this is the parallel path,
    // not the single-band fast path.
    let spec = BenchmarkSpec::new("det-wide", 110, 400, 120).with_seed(11);
    let halo = sadp::scenario::interaction_radius_tracks(&DesignRules::node_10nm());
    assert!(
        BandPlan::for_plane(spec.width_tracks, halo).len() >= 2,
        "fixture must exercise the banded schedule"
    );

    let serial = route_with(&spec, 1);
    for threads in [2, 4] {
        let sharded = route_with(&spec, threads);
        assert_eq!(serial.0, sharded.0, "report diverged at threads={threads}");
        assert_eq!(
            serial.1, sharded.1,
            "patterns/colors diverged at threads={threads}"
        );
        assert_eq!(
            serial.2, sharded.2,
            "failed nets diverged at threads={threads}"
        );
        assert_eq!(
            serial.3, sharded.3,
            "plane occupancy diverged at threads={threads}"
        );
    }
    // The conflict-free guarantee holds for the parallel path too.
    assert_eq!(serial.0.cut_conflicts, 0);
    assert_eq!(serial.0.hard_overlay_violations, 0);
    assert!(serial.0.routed_nets > 0);
}

/// Routes `spec` with `threads` workers under a tracing recorder and
/// returns the report plus the serialized event stream. Timing stays off
/// so the report's stage profile holds only deterministic counts.
fn route_traced(spec: &BenchmarkSpec, threads: usize) -> (RoutingReport, String) {
    let (mut plane, netlist) = spec.generate();
    let mut config = RouterConfig::paper_defaults();
    config.threads = threads;
    let mut router = Router::new(config);
    let mut rec = BufferRecorder::with_flags(true, false);
    let mut report = router.route_all_with(&mut plane, &netlist, &mut rec);
    report.cpu = Duration::ZERO;
    (report, events_to_jsonl(&rec.take_events()))
}

#[test]
fn report_counters_identical_across_thread_counts() {
    // Band workers count into private ledgers that `merge_band` folds into
    // the global one; every counter must come out equal to the serial run.
    let spec = BenchmarkSpec::new("det-wide", 110, 400, 120).with_seed(11);
    let (serial, _) = route_traced(&spec, 1);
    let (sharded, _) = route_traced(&spec, 4);
    assert_eq!(serial.ripups, sharded.ripups);
    assert_eq!(serial.ripups_type_b, sharded.ripups_type_b);
    assert_eq!(serial.ripups_graph, sharded.ripups_graph);
    assert_eq!(serial.ripups_risk, sharded.ripups_risk);
    assert_eq!(serial.failed_no_path, sharded.failed_no_path);
    assert_eq!(serial.failed_exhausted, sharded.failed_exhausted);
    assert_eq!(serial.failed_cleanup, sharded.failed_cleanup);
    assert_eq!(serial.flips, sharded.flips);
    assert_eq!(serial.nodes_expanded, sharded.nodes_expanded);
    assert_eq!(serial.color_fallbacks, sharded.color_fallbacks);
    // Stage work counts are part of the contract too (times are zero here
    // because timing is off, so whole-profile equality is meaningful).
    assert_eq!(serial.profile, sharded.profile);
    assert_eq!(serial, sharded, "full reports diverged");
}

#[test]
fn trace_is_byte_identical_across_thread_counts() {
    // Events carry only logical routing facts and band buffers are
    // replayed in band order, so the JSONL stream is byte-stable.
    let spec = BenchmarkSpec::new("det-wide", 110, 400, 120).with_seed(11);
    let (_, serial) = route_traced(&spec, 1);
    let (_, sharded) = route_traced(&spec, 2);
    assert!(!serial.is_empty(), "trace should record events");
    assert!(serial
        .lines()
        .any(|l| l.contains("\"event\":\"net_routed\"")));
    assert_eq!(serial, sharded, "event streams diverged");
}

/// Routes `spec` with `threads` workers and the fault plan for `seed`.
fn route_faulted(spec: &BenchmarkSpec, threads: usize, seed: u64) -> RunResult {
    let mut config = RouterConfig::paper_defaults();
    config.threads = threads;
    config.faults = Some(FaultPlan::new(seed));
    route_config(spec, config)
}

#[test]
fn injected_band_panics_recover_to_the_clean_result() {
    // The recovery contract: a band worker that panics is re-routed on
    // the serial fallback, and the final output is byte-identical to a
    // run where the panic never happened — the only trace it leaves is
    // the `bands_recovered` counter.
    let spec = BenchmarkSpec::new("det-wide", 110, 400, 120).with_seed(11);
    let clean = route_with(&spec, 1);

    // Find a fault seed that panics at least one band worker without
    // also injecting budget faults (those legitimately change the
    // result, so they would muddy the comparison).
    let seed = (0..32u64)
        .find(|&s| {
            let r = route_faulted(&spec, 1, s);
            r.0.bands_recovered > 0 && r.0.failed_budget == 0
        })
        .expect("some seed in 0..32 panics a band without budget faults");
    let faulted = route_faulted(&spec, 1, seed);

    // Recovery itself is deterministic across thread counts.
    for threads in [2, 4] {
        assert_eq!(
            faulted,
            route_faulted(&spec, threads, seed),
            "faulted run diverged at threads={threads}"
        );
    }

    // Modulo the recovery counter, the faulted run IS the clean run.
    let mut masked = faulted.clone();
    masked.0.bands_recovered = 0;
    assert_eq!(masked, clean, "recovery altered the routed result");
}

#[test]
fn budget_exhaustion_is_graceful_and_deterministic() {
    // A tiny per-net node budget fails most nets with BudgetExceeded but
    // never aborts the run; node counts are logical, so the degraded
    // result is still byte-identical across thread counts.
    let spec = BenchmarkSpec::new("det-wide", 110, 400, 120).with_seed(11);
    let mut config = RouterConfig::paper_defaults();
    config.net_node_budget = 40;
    let starved = route_config(&spec, config.clone());
    assert!(
        starved.0.failed_budget > 0,
        "a 40-node budget should starve some nets"
    );
    assert!(
        starved.0.routed_nets + starved.2.len() == spec.net_count,
        "every net is either routed or accounted failed"
    );
    for threads in [2, 4] {
        let mut c = config.clone();
        c.threads = threads;
        assert_eq!(
            starved,
            route_config(&spec, c),
            "budget-degraded run diverged at threads={threads}"
        );
    }
    // The clean run routes strictly more than the starved one.
    let clean = route_with(&spec, 1);
    assert!(clean.0.routed_nets > starved.0.routed_nets);
}

#[test]
fn narrow_plane_ignores_thread_count() {
    // Below one band width the driver routes directly on the real plane;
    // extra workers must change nothing.
    let spec = BenchmarkSpec::new("det-narrow", 40, 64, 64).with_seed(7);
    assert_eq!(
        BandPlan::for_plane(
            spec.width_tracks,
            sadp::scenario::interaction_radius_tracks(&DesignRules::node_10nm())
        )
        .len(),
        1
    );
    let serial = route_with(&spec, 1);
    let many = route_with(&spec, 8);
    assert_eq!(serial, many);
}
