//! The parallel driver's determinism contract: for any thread count the
//! routed result is *identical* to the serial run — same report, same
//! paths, same colors, same failures. The band partition and the commit
//! order depend only on the plane geometry, never on scheduling.

use sadp::grid::{BandPlan, BenchmarkSpec};
use sadp::prelude::*;
use sadp_geom::TrackRect;
use std::time::Duration;

/// Routes `spec` with `threads` workers and returns everything observable.
#[allow(clippy::type_complexity)]
fn route_with(
    spec: &BenchmarkSpec,
    threads: usize,
) -> (
    RoutingReport,
    Vec<Vec<(u32, Color, Vec<TrackRect>)>>,
    Vec<NetId>,
    (usize, usize, usize),
) {
    let (mut plane, netlist) = spec.generate();
    let mut config = RouterConfig::paper_defaults();
    config.threads = threads;
    let mut router = Router::new(config);
    let mut report = router.route_all(&mut plane, &netlist);
    // The report compares CPU time too; zero it so only results count.
    report.cpu = Duration::ZERO;
    let patterns = (0..plane.layers())
        .map(|l| router.patterns_on_layer(Layer(l)))
        .collect();
    (report, patterns, router.failed().to_vec(), plane.usage())
}

#[test]
fn sharded_run_is_byte_identical_to_serial() {
    // Wide enough for a multi-band partition: this is the parallel path,
    // not the single-band fast path.
    let spec = BenchmarkSpec::new("det-wide", 110, 400, 120).with_seed(11);
    let halo = sadp::scenario::interaction_radius_tracks(&DesignRules::node_10nm());
    assert!(
        BandPlan::for_plane(spec.width_tracks, halo).len() >= 2,
        "fixture must exercise the banded schedule"
    );

    let serial = route_with(&spec, 1);
    for threads in [2, 4] {
        let sharded = route_with(&spec, threads);
        assert_eq!(serial.0, sharded.0, "report diverged at threads={threads}");
        assert_eq!(
            serial.1, sharded.1,
            "patterns/colors diverged at threads={threads}"
        );
        assert_eq!(
            serial.2, sharded.2,
            "failed nets diverged at threads={threads}"
        );
        assert_eq!(
            serial.3, sharded.3,
            "plane occupancy diverged at threads={threads}"
        );
    }
    // The conflict-free guarantee holds for the parallel path too.
    assert_eq!(serial.0.cut_conflicts, 0);
    assert_eq!(serial.0.hard_overlay_violations, 0);
    assert!(serial.0.routed_nets > 0);
}

#[test]
fn narrow_plane_ignores_thread_count() {
    // Below one band width the driver routes directly on the real plane;
    // extra workers must change nothing.
    let spec = BenchmarkSpec::new("det-narrow", 40, 64, 64).with_seed(7);
    assert_eq!(
        BandPlan::for_plane(
            spec.width_tracks,
            sadp::scenario::interaction_radius_tracks(&DesignRules::node_10nm())
        )
        .len(),
        1
    );
    let serial = route_with(&spec, 1);
    let many = route_with(&spec, 8);
    assert_eq!(serial, many);
}
