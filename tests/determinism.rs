//! The parallel driver's determinism contract: for any thread count the
//! routed result is *identical* to the serial run — same report, same
//! paths, same colors, same failures. The band partition, the boundary
//! wave schedule, and the commit order depend only on the plane geometry
//! and the netlist, never on scheduling.

use sadp::core::FaultPlan;
use sadp::grid::{BandPlan, BenchmarkSpec};
use sadp::obs::events_to_jsonl;
use sadp::prelude::*;
use sadp_geom::TrackRect;
use std::time::Duration;

/// Everything observable about one routed run.
type RunResult = (
    RoutingReport,
    Vec<Vec<(u32, Color, Vec<TrackRect>)>>,
    Vec<NetId>,
    (usize, usize, usize),
);

/// Routes `spec` under `config` and returns everything observable.
fn route_config(spec: &BenchmarkSpec, config: RouterConfig) -> RunResult {
    let (mut plane, netlist) = spec.generate();
    let mut router = Router::new(config);
    let mut report = router.route_all(&mut plane, &netlist);
    // The report compares CPU time too; zero it so only results count.
    report.cpu = Duration::ZERO;
    let patterns = (0..plane.layers())
        .map(|l| router.patterns_on_layer(Layer(l)))
        .collect();
    (report, patterns, router.failed().to_vec(), plane.usage())
}

/// Routes `spec` with `threads` workers and returns everything observable.
fn route_with(spec: &BenchmarkSpec, threads: usize) -> RunResult {
    let mut config = RouterConfig::paper_defaults();
    config.threads = threads;
    route_config(spec, config)
}

#[test]
fn sharded_run_is_byte_identical_to_serial() {
    // Wide enough for a multi-band partition: this is the parallel path,
    // not the single-band fast path.
    let spec = BenchmarkSpec::new("det-wide", 110, 400, 120).with_seed(11);
    let halo = sadp::scenario::interaction_radius_tracks(&DesignRules::node_10nm());
    assert!(
        BandPlan::for_plane(spec.width_tracks, halo).len() >= 2,
        "fixture must exercise the banded schedule"
    );

    let serial = route_with(&spec, 1);
    for threads in [2, 4] {
        let sharded = route_with(&spec, threads);
        assert_eq!(serial.0, sharded.0, "report diverged at threads={threads}");
        assert_eq!(
            serial.1, sharded.1,
            "patterns/colors diverged at threads={threads}"
        );
        assert_eq!(
            serial.2, sharded.2,
            "failed nets diverged at threads={threads}"
        );
        assert_eq!(
            serial.3, sharded.3,
            "plane occupancy diverged at threads={threads}"
        );
    }
    // The conflict-free guarantee holds for the parallel path too.
    assert_eq!(serial.0.cut_conflicts, 0);
    assert_eq!(serial.0.hard_overlay_violations, 0);
    assert!(serial.0.routed_nets > 0);
}

/// Routes `spec` with `threads` workers under a tracing recorder and
/// returns the report plus the serialized event stream. Timing stays off
/// so the report's stage profile holds only deterministic counts.
fn route_traced(spec: &BenchmarkSpec, threads: usize) -> (RoutingReport, String) {
    let (mut plane, netlist) = spec.generate();
    let mut config = RouterConfig::paper_defaults();
    config.threads = threads;
    let mut router = Router::new(config);
    let mut rec = BufferRecorder::with_flags(true, false);
    let mut report = router.route_all_with(&mut plane, &netlist, &mut rec);
    report.cpu = Duration::ZERO;
    (report, events_to_jsonl(&rec.take_events()))
}

#[test]
fn report_counters_identical_across_thread_counts() {
    // Band workers count into private ledgers that `merge_band` folds into
    // the global one; every counter must come out equal to the serial run.
    let spec = BenchmarkSpec::new("det-wide", 110, 400, 120).with_seed(11);
    let (serial, _) = route_traced(&spec, 1);
    let (sharded, _) = route_traced(&spec, 4);
    assert_eq!(serial.ripups, sharded.ripups);
    assert_eq!(serial.ripups_type_b, sharded.ripups_type_b);
    assert_eq!(serial.ripups_graph, sharded.ripups_graph);
    assert_eq!(serial.ripups_risk, sharded.ripups_risk);
    assert_eq!(serial.failed_no_path, sharded.failed_no_path);
    assert_eq!(serial.failed_exhausted, sharded.failed_exhausted);
    assert_eq!(serial.failed_cleanup, sharded.failed_cleanup);
    assert_eq!(serial.flips, sharded.flips);
    assert_eq!(serial.nodes_expanded, sharded.nodes_expanded);
    assert_eq!(serial.color_fallbacks, sharded.color_fallbacks);
    // Stage work counts are part of the contract too (times are zero here
    // because timing is off, so whole-profile equality is meaningful).
    assert_eq!(serial.profile, sharded.profile);
    assert_eq!(serial, sharded, "full reports diverged");
}

#[test]
fn trace_is_byte_identical_across_thread_counts() {
    // Events carry only logical routing facts and band buffers are
    // replayed in band order, so the JSONL stream is byte-stable.
    let spec = BenchmarkSpec::new("det-wide", 110, 400, 120).with_seed(11);
    let (_, serial) = route_traced(&spec, 1);
    let (_, sharded) = route_traced(&spec, 2);
    assert!(!serial.is_empty(), "trace should record events");
    assert!(serial
        .lines()
        .any(|l| l.contains("\"event\":\"net_routed\"")));
    assert_eq!(serial, sharded, "event streams diverged");
}

/// Routes `spec` with `threads` workers and the fault plan for `seed`.
fn route_faulted(spec: &BenchmarkSpec, threads: usize, seed: u64) -> RunResult {
    let mut config = RouterConfig::paper_defaults();
    config.threads = threads;
    config.faults = Some(FaultPlan::new(seed));
    route_config(spec, config)
}

#[test]
fn injected_band_panics_recover_to_the_clean_result() {
    // The recovery contract: a band worker that panics is re-routed on
    // the serial fallback, and the final output is byte-identical to a
    // run where the panic never happened — the only trace it leaves is
    // the `bands_recovered` counter.
    let spec = BenchmarkSpec::new("det-wide", 110, 400, 120).with_seed(11);
    let clean = route_with(&spec, 1);

    // Find a fault seed that panics at least one band worker without
    // also injecting budget faults (those legitimately change the
    // result, so they would muddy the comparison).
    let seed = (0..32u64)
        .find(|&s| {
            let r = route_faulted(&spec, 1, s);
            r.0.bands_recovered > 0 && r.0.failed_budget == 0
        })
        .expect("some seed in 0..32 panics a band without budget faults");
    let faulted = route_faulted(&spec, 1, seed);

    // Recovery itself is deterministic across thread counts.
    for threads in [2, 4] {
        assert_eq!(
            faulted,
            route_faulted(&spec, threads, seed),
            "faulted run diverged at threads={threads}"
        );
    }

    // Modulo the recovery counters, the faulted run IS the clean run.
    // (The same plan may also panic boundary-wave pre-searches; those
    // recover byte-identically too, so both counters are masked.)
    let mut masked = faulted.clone();
    masked.0.bands_recovered = 0;
    masked.0.waves_recovered = 0;
    assert_eq!(masked, clean, "recovery altered the routed result");
}

/// Twelve identical-length nets that all straddle the x=200 band edge of
/// a two-band 400-track plane, in interleaving conflict groups. A net's
/// wave footprint is its pin bbox grown by `search_margin + halo`
/// (24 + 2) per side, so rows 60 tracks apart are footprint-disjoint
/// while rows 30 apart conflict: the wave planner must batch the former
/// into wide waves and cut before the latter. Equal lengths make the
/// canonical (HPWL, id) order the insertion order.
fn boundary_wave_fixture() -> (RoutingPlane, Netlist) {
    let plane = RoutingPlane::new(3, 400, 300, DesignRules::node_10nm()).expect("valid plane");
    let mut nl = Netlist::new();
    let rows: [i32; 12] = [10, 70, 130, 190, 250, 40, 100, 160, 220, 280, 25, 85];
    for (i, &y) in rows.iter().enumerate() {
        nl.add_two_pin(
            format!("b{i}"),
            GridPoint::new(Layer(0), 150, y),
            GridPoint::new(Layer(0), 250, y),
        );
    }
    (plane, nl)
}

/// Routes the boundary-wave fixture under `config` with a tracing
/// recorder; returns everything observable plus the JSONL event stream.
fn route_waves(mut config: RouterConfig, threads: usize) -> (RunResult, String) {
    let (mut plane, netlist) = boundary_wave_fixture();
    config.threads = threads;
    let mut router = Router::new(config);
    let mut rec = BufferRecorder::with_flags(true, false);
    let mut report = router.route_all_with(&mut plane, &netlist, &mut rec);
    report.cpu = Duration::ZERO;
    let patterns = (0..plane.layers())
        .map(|l| router.patterns_on_layer(Layer(l)))
        .collect();
    (
        (report, patterns, router.failed().to_vec(), plane.usage()),
        events_to_jsonl(&rec.take_events()),
    )
}

#[test]
fn boundary_waves_are_byte_identical_across_thread_counts() {
    // The tentpole contract: boundary nets pre-search in parallel waves
    // but commit in exact canonical order, so report, colors, patterns,
    // occupancy AND the full event trace are byte-stable at any worker
    // count.
    let (serial, serial_trace) = route_waves(RouterConfig::paper_defaults(), 1);
    assert!(serial.0.routed_nets > 0, "fixture must route");

    // Vacuity guards: the fixture must actually exercise wave batching —
    // several waves, and at least one wave holding more than one net.
    let wave_lines: Vec<&str> = serial_trace
        .lines()
        .filter(|l| l.contains("\"event\":\"wave_scheduled\""))
        .collect();
    assert!(
        wave_lines.len() >= 2,
        "fixture must split into multiple waves: {wave_lines:?}"
    );
    let wide_waves = wave_lines
        .iter()
        .filter(|l| !l.contains("\"nets\":1}"))
        .count();
    assert!(
        wide_waves >= 1,
        "at least one wave must batch >1 net: {wave_lines:?}"
    );

    for threads in [2, 4] {
        let (sharded, trace) = route_waves(RouterConfig::paper_defaults(), threads);
        assert_eq!(serial, sharded, "wave run diverged at threads={threads}");
        assert_eq!(
            serial_trace, trace,
            "wave trace diverged at threads={threads}"
        );
    }
    assert_eq!(serial.0.cut_conflicts, 0);
    assert_eq!(serial.0.hard_overlay_violations, 0);
}

#[test]
fn budget_starved_boundary_waves_fail_identically_across_thread_counts() {
    // Per-net node budgets are charged inside the wave pre-search and
    // threaded into the replay; the budget-starved failure set must be
    // identical at every thread count even when every failing net is a
    // boundary net.
    let mut config = RouterConfig::paper_defaults();
    config.net_node_budget = 40;
    let (starved, starved_trace) = route_waves(config.clone(), 1);
    assert!(
        starved.0.failed_budget > 0,
        "a 40-node budget should starve boundary nets"
    );
    assert_eq!(
        starved.0.routed_nets + starved.2.len(),
        12,
        "every net is either routed or accounted failed"
    );
    for threads in [2, 4] {
        let (run, trace) = route_waves(config.clone(), threads);
        assert_eq!(
            starved, run,
            "budget-starved wave run diverged at threads={threads}"
        );
        assert_eq!(
            starved_trace, trace,
            "budget-starved trace diverged at threads={threads}"
        );
    }
    // The unstarved run routes strictly more.
    let (clean, _) = route_waves(RouterConfig::paper_defaults(), 1);
    assert!(clean.0.routed_nets > starved.0.routed_nets);
}

#[test]
fn injected_wave_panics_recover_to_the_clean_result() {
    // The wave recovery contract: a pre-search that panics is re-searched
    // serially during the replay, and the final output is byte-identical
    // to a run where the panic never happened — the only trace it leaves
    // is the `waves_recovered` counter. (The fixture has no band-interior
    // nets, so band panics cannot fire and muddy the comparison.)
    let (clean, _) = route_waves(RouterConfig::paper_defaults(), 1);

    let faulted_run = |threads: usize, seed: u64| {
        let mut config = RouterConfig::paper_defaults();
        config.faults = Some(FaultPlan::new(seed));
        route_waves(config, threads).0
    };
    let seed = (0..64u64)
        .find(|&s| {
            let r = faulted_run(1, s);
            r.0.waves_recovered > 0 && r.0.failed_budget == 0
        })
        .expect("some seed in 0..64 panics a wave pre-search without budget faults");
    let faulted = faulted_run(1, seed);
    assert_eq!(faulted.0.bands_recovered, 0, "fixture has no band nets");

    // Wave recovery is deterministic across thread counts (injection is
    // keyed by net id, never by wave index or worker).
    for threads in [2, 4] {
        assert_eq!(
            faulted,
            faulted_run(threads, seed),
            "faulted wave run diverged at threads={threads}"
        );
    }

    // Modulo the recovery counter, the faulted run IS the clean run.
    let mut masked = faulted.clone();
    masked.0.waves_recovered = 0;
    assert_eq!(masked, clean, "wave recovery altered the routed result");
}

#[test]
fn budget_exhaustion_is_graceful_and_deterministic() {
    // A tiny per-net node budget fails most nets with BudgetExceeded but
    // never aborts the run; node counts are logical, so the degraded
    // result is still byte-identical across thread counts.
    let spec = BenchmarkSpec::new("det-wide", 110, 400, 120).with_seed(11);
    let mut config = RouterConfig::paper_defaults();
    config.net_node_budget = 40;
    let starved = route_config(&spec, config.clone());
    assert!(
        starved.0.failed_budget > 0,
        "a 40-node budget should starve some nets"
    );
    assert!(
        starved.0.routed_nets + starved.2.len() == spec.net_count,
        "every net is either routed or accounted failed"
    );
    for threads in [2, 4] {
        let mut c = config.clone();
        c.threads = threads;
        assert_eq!(
            starved,
            route_config(&spec, c),
            "budget-degraded run diverged at threads={threads}"
        );
    }
    // The clean run routes strictly more than the starved one.
    let clean = route_with(&spec, 1);
    assert!(clean.0.routed_nets > starved.0.routed_nets);
}

#[test]
fn narrow_plane_ignores_thread_count() {
    // Below one band width the driver routes directly on the real plane;
    // extra workers must change nothing.
    let spec = BenchmarkSpec::new("det-narrow", 40, 64, 64).with_seed(7);
    assert_eq!(
        BandPlan::for_plane(
            spec.width_tracks,
            sadp::scenario::interaction_radius_tracks(&DesignRules::node_10nm())
        )
        .len(),
        1
    );
    let serial = route_with(&spec, 1);
    let many = route_with(&spec, 8);
    assert_eq!(serial, many);
}

/// Drives `spec` through a stepwise [`RoutingSession`] in small slices
/// and returns everything observable plus the streamed event JSONL.
fn route_stepped(spec: &BenchmarkSpec, threads: usize, slice: u64) -> (RunResult, String) {
    use sadp::core::{RoutingSession, SessionStatus, StepBudget};
    let (plane, netlist) = spec.generate();
    let mut config = RouterConfig::paper_defaults();
    config.threads = threads;
    let mut session =
        RoutingSession::create(config, plane, netlist, true, false).expect("session creates");
    let mut events = Vec::new();
    let mut report = loop {
        let status = session.advance(StepBudget::steps(slice));
        events.extend(session.drain_events());
        match status {
            SessionStatus::Running | SessionStatus::CheckpointReady => {}
            SessionStatus::Done(report) => break *report,
            SessionStatus::Failed(e) => panic!("session failed: {e}"),
        }
    };
    report.cpu = Duration::ZERO;
    let patterns = (0..session.plane().layers())
        .map(|l| session.router().patterns_on_layer(Layer(l)))
        .collect();
    let failed = session.router().failed().to_vec();
    let usage = session.plane().usage();
    ((report, patterns, failed, usage), events_to_jsonl(&events))
}

#[test]
fn stepped_session_is_byte_identical_to_blocking_route_at_every_thread_count() {
    // The session pauses only *between* canonical commits, so slicing the
    // run into tiny budgets must change nothing — not the report, not the
    // geometry, not even the trace bytes — at any thread count.
    let spec = BenchmarkSpec::new("det-wide", 110, 400, 120).with_seed(11);
    for threads in [1, 2, 4] {
        let (blocking, trace) = route_traced(&spec, threads);
        let (stepped, stepped_trace) = route_stepped(&spec, threads, 3);
        assert_eq!(
            blocking, stepped.0,
            "stepped report diverged at threads={threads}"
        );
        assert_eq!(
            trace, stepped_trace,
            "stepped trace diverged at threads={threads}"
        );
    }
    // And the stepped runs agree with each other on everything observable.
    let (serial, _) = route_stepped(&spec, 1, 3);
    let (sharded, _) = route_stepped(&spec, 4, 7);
    assert_eq!(serial, sharded, "stepped runs diverged across threads");
}
