//! End-to-end integration tests: benchmark generation → routing →
//! constraint-graph evaluation → decomposability.

use sadp::prelude::*;
use sadp_grid::BenchmarkSpec;

fn route_spec(spec: &BenchmarkSpec) -> (Router, RoutingReport) {
    let (mut plane, netlist) = spec.generate();
    let mut router = Router::new(RouterConfig::paper_defaults());
    let report = router.route_all(&mut plane, &netlist);
    (router, report)
}

#[test]
fn scaled_test1_routes_conflict_free() {
    let spec = BenchmarkSpec::paper_fixed_suite().remove(0).scaled(0.08);
    let (_, report) = route_spec(&spec);
    assert!(
        report.routability() >= 85.0,
        "routability {:.1}% too low",
        report.routability()
    );
    assert_eq!(report.hard_overlay_violations, 0);
    assert_eq!(report.cut_conflicts, 0);
    assert!(report.overlay_units > 0, "dense layouts have some overlay");
}

#[test]
fn multi_candidate_suite_routes() {
    let spec = BenchmarkSpec::paper_multi_suite().remove(0).scaled(0.08);
    let (_, report) = route_spec(&spec);
    assert!(report.routability() >= 85.0);
    assert_eq!(report.cut_conflicts, 0);
}

#[test]
fn routing_is_deterministic() {
    let spec = BenchmarkSpec::paper_fixed_suite().remove(0).scaled(0.05);
    let (_, a) = route_spec(&spec);
    let (_, b) = route_spec(&spec);
    assert_eq!(a.routed_nets, b.routed_nets);
    assert_eq!(a.overlay_units, b.overlay_units);
    assert_eq!(a.wirelength, b.wirelength);
}

#[test]
fn routed_paths_connect_their_pins() {
    let spec = BenchmarkSpec::paper_fixed_suite().remove(0).scaled(0.05);
    let (mut plane, netlist) = spec.generate();
    let mut router = Router::new(RouterConfig::paper_defaults());
    router.route_all(&mut plane, &netlist);
    for (id, routed) in router.routed() {
        let net = netlist.net(*id);
        assert!(
            net.source.candidates().contains(&routed.path.source()),
            "source of {id} is a pin candidate"
        );
        assert!(
            net.target.candidates().contains(&routed.path.target()),
            "target of {id} is a pin candidate"
        );
        // Every path cell is occupied by the net on the plane.
        for &p in routed.path.points() {
            assert_eq!(plane.occupant(p), Some(*id), "cell {p} owned by {id}");
        }
    }
}

#[test]
fn no_two_nets_share_a_cell() {
    let spec = BenchmarkSpec::paper_fixed_suite().remove(0).scaled(0.05);
    let (mut plane, netlist) = spec.generate();
    let mut router = Router::new(RouterConfig::paper_defaults());
    router.route_all(&mut plane, &netlist);
    let mut seen = std::collections::HashMap::new();
    for (id, routed) in router.routed() {
        for &p in routed.path.points() {
            if let Some(prev) = seen.insert(p, *id) {
                assert_eq!(prev, *id, "cell {p} shared by {prev} and {id}");
            }
        }
    }
}

#[test]
fn hard_constraints_are_satisfied_in_final_coloring() {
    use sadp_scenario::Assignment;
    let spec = BenchmarkSpec::paper_fixed_suite().remove(0).scaled(0.08);
    let (router, _) = route_spec(&spec);
    for graph in router.graphs() {
        for (a, b, data) in graph.edges() {
            let asg = Assignment::from_colors(graph.color(a), graph.color(b));
            assert!(
                !data.table.entry(asg).is_forbidden(),
                "hard constraint violated between nets {a} and {b}"
            );
            assert!(
                !data.table.entry(asg).has_cut_risk(),
                "type-A cut risk realized between nets {a} and {b}"
            );
        }
    }
}

#[test]
fn report_totals_are_consistent() {
    let spec = BenchmarkSpec::paper_fixed_suite().remove(0).scaled(0.05);
    let (router, report) = route_spec(&spec);
    assert_eq!(report.routed_nets, router.routed().len());
    assert_eq!(
        report.total_nets,
        report.routed_nets + router.failed().len()
    );
    let wl: u64 = router.routed().values().map(|r| r.wirelength()).sum();
    assert_eq!(report.wirelength, wl);
}

#[test]
fn conflict_freedom_holds_across_seeds() {
    // The zero-conflict guarantee is structural, not a property of one
    // lucky instance.
    for seed in [7, 42, 1234] {
        let spec = BenchmarkSpec::paper_fixed_suite()
            .remove(0)
            .scaled(0.06)
            .with_seed(seed);
        let (_, report) = route_spec(&spec);
        assert_eq!(report.hard_overlay_violations, 0, "seed {seed}");
        assert_eq!(report.cut_conflicts, 0, "seed {seed}");
        assert!(report.routability() > 80.0, "seed {seed}: {report}");
    }
}
