//! Integration tests driving the router from text-format layout fixtures
//! (the `sadp_grid::io` path) and checking multi-layer coloring semantics.

use sadp::grid::{read_layout, write_layout, NetId};
use sadp::prelude::*;

/// A hand-written fixture: a two-track channel with the Fig. 21 odd-cycle
/// block plus an independent net on the side.
const ODD_CYCLE_FIXTURE: &str = "
# Fig. 21 odd-cycle block in a channel
plane 1 24 16
blockage 0 0 0 23 4
blockage 0 0 7 23 15
net A 0:2,5 0:6,5
net B 0:7,5 0:12,5
net C 0:2,6 0:12,6
";

#[test]
fn fixture_routes_like_the_figure() {
    let (mut plane, netlist) = read_layout(ODD_CYCLE_FIXTURE).expect("fixture parses");
    let mut router = Router::new(RouterConfig {
        pin_guard: 0.0,
        ..RouterConfig::paper_defaults()
    });
    let report = router.route_all(&mut plane, &netlist);
    assert_eq!(report.routed_nets, 3);
    assert_eq!(report.cut_conflicts, 0);
    assert_eq!(report.hard_overlay_violations, 0);
    // A and B merged (same color), C differs.
    let a = router.color_of(NetId(0), Layer(0)).unwrap();
    let b = router.color_of(NetId(1), Layer(0)).unwrap();
    let c = router.color_of(NetId(2), Layer(0)).unwrap();
    assert_eq!(a, b, "1-b hard same-color constraint");
    assert_ne!(a, c, "1-a hard different-color constraint");
}

#[test]
fn write_then_read_preserves_routing_results() {
    let (plane, netlist) = read_layout(ODD_CYCLE_FIXTURE).expect("fixture parses");
    let text = write_layout(&plane, &netlist);
    let (mut plane2, netlist2) = read_layout(&text).expect("round trip");
    assert_eq!(netlist, netlist2);

    let mut router = Router::new(RouterConfig {
        pin_guard: 0.0,
        ..RouterConfig::paper_defaults()
    });
    let report = router.route_all(&mut plane2, &netlist2);
    assert_eq!(report.routed_nets, 3);
}

#[test]
fn per_layer_colors_are_independent() {
    // Fig. 17: a net may have different colors on different layers —
    // overlay constraint graphs per layer are independent. Build a layout
    // where net X is forced to Second on M1 (beside a fixed Core rail)
    // and can stay Core on M2.
    let fixture = "
plane 2 32 16
net rail1 0:2,5 0:20,5
net rail2 0:2,7 0:20,7
net cross 0:2,6 0:20,6
";
    let (mut plane, netlist) = read_layout(fixture).expect("parses");
    // Force `cross` to climb: block most of its row on M1 after a start
    // stub, so it runs beside the rails briefly, vias up, and returns.
    plane.add_blockage(Layer(0), TrackRect::new(8, 6, 14, 6));
    let mut router = Router::new(RouterConfig {
        pin_guard: 0.0,
        ..RouterConfig::paper_defaults()
    });
    let report = router.route_all(&mut plane, &netlist);
    assert_eq!(report.routed_nets, 3, "{report}");
    let cross = NetId(2);
    let m1 = router.color_of(cross, Layer(0));
    let m2 = router.color_of(cross, Layer(1));
    assert!(m1.is_some(), "cross has M1 fragments");
    assert!(m2.is_some(), "cross detours over M2");
    // The two layer graphs are distinct objects; whatever the colors are,
    // each layer's evaluation must be violation-free independently.
    for g in router.graphs() {
        assert_eq!(g.evaluate().hard_violations, 0);
    }
}

#[test]
fn repo_fixtures_route_and_verify() {
    use sadp::decomp::verify_layers;
    for file in ["fixtures/odd_cycle.layout", "fixtures/clock_tree.layout"] {
        let text = std::fs::read_to_string(file).expect("fixture exists");
        let (mut plane, netlist) = read_layout(&text).expect("fixture parses");
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &netlist);
        assert_eq!(report.routed_nets, netlist.len(), "{file}: {report}");
        assert_eq!(report.cut_conflicts, 0, "{file}");
        let layers: Vec<_> = (0..plane.layers())
            .map(|l| router.patterns_on_layer(Layer(l)))
            .collect();
        let verdict = verify_layers(&layers, plane.rules());
        assert!(verdict.is_decomposable(), "{file}: {verdict}");
    }
}
