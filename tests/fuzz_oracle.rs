//! Property test over seeded fuzz instances: whenever the router's report
//! claims a conflict-free result, the pixel cut-process simulator must
//! agree that the final colored layout is decomposable. This is the
//! differential invariant the nightly fuzz campaign enforces at scale
//! (`sadp fuzz`), pinned here on a fixed 50-instance slice so plain
//! `cargo test` exercises it on every PR.

use sadp::decomp::verify_layers;
use sadp::fuzz::{generate, Regime};
use sadp::prelude::*;

#[test]
fn report_clean_implies_decomposable_verdict() {
    let mut checked = 0usize;
    let mut routed = 0usize;
    for regime in Regime::ALL {
        for seed in 0..10u64 {
            let inst = generate(regime, seed);
            let mut plane = inst.plane.clone();
            let mut router = Router::new(RouterConfig::paper_defaults());
            let report = router.route_all(&mut plane, &inst.netlist);
            let layers: Vec<_> = (0..plane.layers())
                .map(|l| router.patterns_on_layer(Layer(l)))
                .collect();
            let verdict = verify_layers(&layers, plane.rules());
            // The report is allowed to be conservative (its graph model
            // may count a risk the masks don't realize), but it must
            // never claim clean when the simulator finds a conflict.
            if report.cut_conflicts == 0 && report.hard_overlay_violations == 0 {
                assert!(
                    verdict.is_decomposable(),
                    "{} seed {seed}: report claims clean but the simulator \
                     disagrees:\n{verdict}",
                    regime.name()
                );
            }
            checked += 1;
            routed += report.routed_nets;
        }
    }
    assert_eq!(checked, 50);
    // Sanity: the slice is not vacuous — the instances actually route.
    assert!(routed > 1000, "only {routed} nets routed across the slice");
}
