//! CLI-level tests for real-layout ingestion: format auto-detection,
//! `sadp convert` round-trips, pinned parse errors, and the thread
//! determinism of routed imports.

use std::path::{Path, PathBuf};
use std::process::Command;

fn sadp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sadp"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Stdout with the wall-clock line removed — the only
/// non-deterministic line a route prints.
fn strip_cpu(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes)
        .lines()
        .filter(|l| !l.starts_with("cpu "))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Layout text minus `#` comment lines: convert prepends provenance
/// headers, which are not part of the parsed geometry.
fn strip_comments(text: &str) -> String {
    text.lines()
        .filter(|l| !l.trim_start().starts_with('#'))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn imported_fixtures_route_identically_across_thread_counts() {
    for fixture in [
        "fixtures/imported/led-matrix.dsn",
        "fixtures/imported/macro-block.def",
    ] {
        let mut outputs = Vec::new();
        for threads in ["1", "2", "4"] {
            let out = sadp()
                .args(["route", fixture, "--threads", threads])
                .output()
                .expect("binary runs");
            let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
            assert!(out.status.success(), "{fixture}: {stdout}");
            assert!(stdout.contains("imported "), "{fixture}: {stdout}");
            outputs.push(strip_cpu(&out.stdout));
        }
        assert_eq!(outputs[0], outputs[1], "{fixture}: threads 1 vs 2");
        assert_eq!(outputs[0], outputs[2], "{fixture}: threads 1 vs 4");
    }
}

#[test]
fn convert_reaches_a_fixpoint_after_one_round_trip() {
    // parse -> convert emits canonical .layout text; converting that
    // text again must reproduce it exactly (modulo provenance headers).
    let dir = tmp_dir("sadp_ingest_fixpoint");
    for fixture in [
        "fixtures/imported/led-matrix.dsn",
        "fixtures/imported/macro-block.def",
        "fixtures/odd_cycle.layout",
    ] {
        let first = sadp()
            .args(["convert", fixture])
            .output()
            .expect("binary runs");
        assert!(
            first.status.success(),
            "{fixture}: {}",
            String::from_utf8_lossy(&first.stderr)
        );
        let once = String::from_utf8_lossy(&first.stdout).into_owned();

        let stem = Path::new(fixture).file_stem().unwrap().to_str().unwrap();
        let intermediate = dir.join(format!("{stem}.layout"));
        std::fs::write(&intermediate, &once).unwrap();
        let second = sadp()
            .args(["convert", intermediate.to_str().unwrap()])
            .output()
            .expect("binary runs");
        assert!(second.status.success());
        let twice = String::from_utf8_lossy(&second.stdout).into_owned();
        assert_eq!(
            strip_comments(&once),
            strip_comments(&twice),
            "{fixture}: convert is not a fixpoint"
        );
    }
}

#[test]
fn convert_records_provenance_and_honours_out() {
    let dir = tmp_dir("sadp_ingest_convert_out");
    let out_file = dir.join("board.layout");
    let out = sadp()
        .args([
            "convert",
            "fixtures/imported/led-matrix.dsn",
            "--out",
            out_file.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote "));
    let text = std::fs::read_to_string(&out_file).expect("file written");
    assert!(
        text.starts_with("# converted from led-matrix.dsn (dsn reader)\n"),
        "{text}"
    );
    assert!(text.contains("pitch 200 (grid wire)"), "{text}");
    // The emitted file routes as a native layout with no import line.
    let routed = sadp()
        .args(["route", out_file.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(routed.status.success());
    assert!(!String::from_utf8_lossy(&routed.stdout).contains("imported "));
}

#[test]
fn auto_detection_sniffs_content_before_trusting_the_extension() {
    // A native layout saved under a misleading `.dsn` name must still
    // be parsed as a layout — content wins, the extension is only a
    // hint for ambiguous content.
    let dir = tmp_dir("sadp_ingest_sniff");
    let native = std::fs::read_to_string("fixtures/odd_cycle.layout").unwrap();
    let disguised = dir.join("board.dsn");
    std::fs::write(&disguised, &native).unwrap();

    let direct = sadp()
        .args(["route", "fixtures/odd_cycle.layout"])
        .output()
        .expect("binary runs");
    let sniffed = sadp()
        .args(["route", disguised.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(sniffed.status.success());
    let stdout = String::from_utf8_lossy(&sniffed.stdout);
    assert!(
        !stdout.contains("imported "),
        "misdetected as an import: {stdout}"
    );
    assert_eq!(
        strip_cpu(&direct.stdout),
        strip_cpu(&sniffed.stdout),
        "the extension changed the result"
    );

    // And the reverse: DSN content under a `.layout` name is a DSN.
    let dsn = std::fs::read_to_string("fixtures/imported/led-matrix.dsn").unwrap();
    let disguised = dir.join("board.layout");
    std::fs::write(&disguised, &dsn).unwrap();
    let out = sadp()
        .args(["route", disguised.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("(dsn)"),
        "DSN content was not sniffed"
    );
}

#[test]
fn malformed_dsn_fails_with_code_3_and_a_position() {
    let dir = tmp_dir("sadp_ingest_bad_dsn");

    // Unclosed list: position of the opener.
    let bad = dir.join("trunc.dsn");
    std::fs::write(&bad, "(pcb x (unclosed\n").unwrap();
    let out = sadp()
        .args(["route", bad.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("dsn: line 1, col 8: unclosed `(`"),
        "{stderr}"
    );

    // Structurally valid s-expr, semantically outside the subset.
    let bad = dir.join("nolayers.dsn");
    std::fs::write(
        &bad,
        "(pcb demo\n  (structure (boundary (rect pcb 0 0 100 100)))\n)\n",
    )
    .unwrap();
    let out = sadp()
        .args(["route", bad.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("dsn: line 2, col 3: no (layer ...) declarations"),
        "{stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn malformed_def_fails_with_code_3_and_a_position() {
    let dir = tmp_dir("sadp_ingest_bad_def");

    // No DIEAREA: nothing to snap onto.
    let bad = dir.join("nodie.def");
    std::fs::write(&bad, "DESIGN d ;\nEND DESIGN\n").unwrap();
    let out = sadp()
        .args(["route", bad.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("def: "), "{stderr}");
    assert!(stderr.contains("missing DIEAREA"), "{stderr}");

    // A layer the subset cannot map names itself and the rule.
    let bad = dir.join("badlayer.def");
    std::fs::write(
        &bad,
        "DESIGN d ;\nDIEAREA ( 0 0 ) ( 64000 48000 ) ;\nPINS 1 ;\n\
         - p1 + LAYER poly ( 0 0 ) ( 1000 1000 ) + PLACED ( 100 100 ) N ;\n\
         END PINS\nEND DESIGN\n",
    )
    .unwrap();
    let out = sadp()
        .args(["route", bad.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot infer a layer index from `poly`"),
        "{stderr}"
    );
    assert!(stderr.contains("line 4"), "{stderr}");
}

#[test]
fn def_with_components_needs_a_lef_and_says_so() {
    let dir = tmp_dir("sadp_ingest_no_lef");
    let def = std::fs::read_to_string("fixtures/imported/macro-block.def").unwrap();
    // Copied away from its sidecar, the DEF has no LEF to resolve
    // macros against.
    let orphan = dir.join("orphan.def");
    std::fs::write(&orphan, &def).unwrap();
    let out = sadp()
        .args(["route", orphan.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("LEF"), "{stderr}");

    // Pointing --lef back at the library fixes it.
    let out = sadp()
        .args([
            "route",
            orphan.to_str().unwrap(),
            "--lef",
            "fixtures/imported/macro-block.lef",
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("imported "), "{stdout}");
}

#[test]
fn convert_without_an_input_is_a_usage_error() {
    let out = sadp().arg("convert").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
