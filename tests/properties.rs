//! Randomized tests on the core invariants, driven by the deterministic
//! [`Rng`] from `sadp-geom` (the workspace builds hermetically, with no
//! external property-testing framework).

use sadp::decomp::Bitmap;
use sadp::geom::{DesignRules, GridPoint, Layer, Rng, TrackRect};
use sadp::graph::{brute_force_color, flip_all, OverlayGraph, ParityDsu};
use sadp::scenario::{classify, Assignment, ScenarioKind};
use sadp_grid::RoutePath;

const CASES: usize = 384;

fn rules() -> DesignRules {
    DesignRules::node_10nm()
}

/// A random 1-track-wide wire fragment near the origin.
fn wire(rng: &mut Rng) -> TrackRect {
    let x = rng.range_i32(0..12);
    let y = rng.range_i32(0..12);
    let len = rng.range_i32(0..8);
    if rng.flip() {
        TrackRect::new(x, y, x + len, y)
    } else {
        TrackRect::new(x, y, x, y + len)
    }
}

/// Theorem 2: every dependent, non-touching pair classifies into one
/// of the 11 scenarios; independent or touching pairs never do.
#[test]
fn classifier_is_total_on_dependent_pairs() {
    let mut rng = Rng::seed_from_u64(0x61);
    let r = rules();
    for _ in 0..CASES {
        let a = wire(&mut rng);
        let b = wire(&mut rng);
        let (dx, dy) = a.track_gap(&b);
        let classified = classify(&a, &b, &r);
        if dx == 0 && dy == 0 {
            assert!(classified.is_none());
        } else if r.gap_is_dependent(dx, dy) {
            assert!(classified.is_some(), "dependent pair unclassified: {a} {b}");
        } else {
            assert!(classified.is_none(), "independent pair classified: {a} {b}");
        }
    }
}

/// Classification is symmetric: the kind is order-independent and the
/// cost tables of the two orders are swaps of each other.
#[test]
fn classifier_is_symmetric() {
    let mut rng = Rng::seed_from_u64(0x62);
    let r = rules();
    for _ in 0..CASES {
        let a = wire(&mut rng);
        let b = wire(&mut rng);
        match (classify(&a, &b, &r), classify(&b, &a, &r)) {
            (Some(s1), Some(s2)) => {
                assert_eq!(s1.kind, s2.kind);
                assert_eq!(s1.table.swapped(), s2.table);
            }
            (None, None) => {}
            _ => panic!("asymmetric classification for {a} / {b}"),
        }
    }
}

/// Theorem 4: on trees of nonhard constraints, the flipping DP matches
/// exhaustive enumeration.
#[test]
fn flipping_dp_is_optimal_on_trees() {
    let nonhard = [
        ScenarioKind::TwoA,
        ScenarioKind::TwoB,
        ScenarioKind::ThreeA,
        ScenarioKind::ThreeB,
        ScenarioKind::ThreeC,
        ScenarioKind::ThreeD,
    ];
    let mut rng = Rng::seed_from_u64(0x63);
    for _ in 0..CASES {
        let n = 1 + rng.index(9);
        let mut g = OverlayGraph::new();
        g.ensure_vertex(0);
        for i in 0..n {
            // Parent strictly smaller: a random tree.
            let parent = rng.index(i + 1) as u32;
            let kind = nonhard[rng.index(nonhard.len())];
            g.add_scenario(parent, i as u32 + 1, kind.table())
                .expect("nonhard edges never fail");
        }
        flip_all(&mut g);
        let nets: Vec<u32> = (0..=n as u32).collect();
        let (_, best) = brute_force_color(&g, &nets);
        let got: u64 = g
            .edges()
            .map(|(a, b, d)| {
                d.table
                    .entry(Assignment::from_colors(g.color(a), g.color(b)))
                    .weight()
            })
            .sum();
        assert_eq!(got, best, "DP not optimal on a tree");
    }
}

/// The parity union-find accepts a hard-edge set iff it is
/// parity-2-colorable (brute force over all colorings).
#[test]
fn parity_dsu_matches_brute_force() {
    let mut rng = Rng::seed_from_u64(0x64);
    for _ in 0..CASES {
        let mut dsu = ParityDsu::new(8);
        let mut accepted = Vec::new();
        for _ in 0..rng.index(17) {
            let a = rng.bounded(8) as u32;
            let b = rng.bounded(8) as u32;
            let parity = rng.flip();
            if a == b {
                continue;
            }
            if dsu.union(a, b, parity).is_ok() {
                accepted.push((a, b, parity));
            } else {
                // The rejected edge must genuinely contradict the accepted
                // set: no 2-coloring satisfies accepted + this edge.
                let mut all = accepted.clone();
                all.push((a, b, parity));
                assert!(!two_colorable(&all), "DSU rejected a satisfiable edge");
            }
        }
        // The accepted set is always satisfiable.
        assert!(two_colorable(&accepted));
    }
}

/// Path fragments cover exactly the path cells of each layer and
/// bookkeeping adds up.
#[test]
fn path_fragments_cover_path() {
    let mut rng = Rng::seed_from_u64(0x65);
    for _ in 0..CASES {
        let mut pts = vec![GridPoint::new(Layer(1), 50, 50)];
        for _ in 0..1 + rng.index(29) {
            let p = *pts.last().unwrap();
            let q = match rng.index(6) as u8 {
                0 => GridPoint::new(p.layer, p.x + 1, p.y),
                1 => GridPoint::new(p.layer, p.x - 1, p.y),
                2 => GridPoint::new(p.layer, p.x, p.y + 1),
                3 => GridPoint::new(p.layer, p.x, p.y - 1),
                4 if p.layer.0 < 2 => GridPoint::new(Layer(p.layer.0 + 1), p.x, p.y),
                _ if p.layer.0 > 0 => GridPoint::new(Layer(p.layer.0 - 1), p.x, p.y),
                _ => GridPoint::new(p.layer, p.x + 1, p.y),
            };
            if q != *pts.last().unwrap() && !pts.contains(&q) {
                pts.push(q);
            }
        }
        let path = RoutePath::new(pts.clone()).expect("constructed stepwise");
        assert_eq!(path.wirelength() + path.via_count(), pts.len() as u64 - 1);
        // Every point is covered by a fragment on its layer.
        let frags = path.fragments();
        for p in &pts {
            assert!(
                frags
                    .iter()
                    .any(|(l, r)| *l == p.layer && r.contains_cell(p.x, p.y)),
                "point {p} not covered"
            );
        }
        // Every fragment cell is on the path.
        for (l, r) in &frags {
            for (x, y) in r.cells() {
                assert!(pts.contains(&GridPoint::new(*l, x, y)));
            }
        }
    }
}

/// Morphology: dilation is extensive and monotone, closing never
/// removes original pixels.
#[test]
fn bitmap_morphology_laws() {
    let mut rng = Rng::seed_from_u64(0x66);
    for _ in 0..CASES {
        let mut b = Bitmap::new(28, 28);
        for _ in 0..1 + rng.index(5) {
            let x = i64::from(rng.range_i32(0..20));
            let y = i64::from(rng.range_i32(0..20));
            let w = i64::from(rng.range_i32(0..6));
            let h = i64::from(rng.range_i32(0..6));
            b.fill_rect(x, y, x + w, y + h);
        }
        let r = 1 + rng.index(2);
        let d = b.dilated(r);
        assert!(b.minus(&d).is_empty(), "dilation is extensive");
        let e = b.eroded(r);
        assert!(e.minus(&b).is_empty(), "erosion is anti-extensive");
        let c = b.closed(r);
        assert!(b.minus(&c).is_empty(), "closing keeps original pixels");
    }
}

/// Brute-force parity 2-colorability.
fn two_colorable(edges: &[(u32, u32, bool)]) -> bool {
    for mask in 0u32..256 {
        if edges.iter().all(|&(a, b, parity)| {
            let ca = mask >> a & 1;
            let cb = mask >> b & 1;
            (ca != cb) == parity
        }) {
            return true;
        }
    }
    false
}

/// End-to-end invariant fuzzing: any random small netlist routes to a
/// conflict-free, hard-overlay-free layout with exclusive cell
/// ownership and pin-connected paths.
#[test]
fn router_invariants_on_random_netlists() {
    use sadp::prelude::*;
    let mut rng = Rng::seed_from_u64(0x67);
    for _ in 0..8 {
        let mut plane = RoutingPlane::new(3, 32, 32, DesignRules::node_10nm()).unwrap();
        let mut netlist = Netlist::new();
        let mut used = std::collections::HashSet::new();
        for i in 0..1 + rng.index(13) {
            let (sx, sy) = (rng.range_i32(2..30), rng.range_i32(2..30));
            let (tx, ty) = (rng.range_i32(2..30), rng.range_i32(2..30));
            // Distinct pin cells only; skip colliding samples.
            if (sx, sy) == (tx, ty) || !used.insert((sx, sy)) || !used.insert((tx, ty)) {
                continue;
            }
            netlist.add_two_pin(
                format!("n{i}"),
                GridPoint::new(Layer(0), sx, sy),
                GridPoint::new(Layer(0), tx, ty),
            );
        }
        if netlist.is_empty() {
            continue;
        }
        let mut router = Router::new(RouterConfig::paper_defaults());
        let report = router.route_all(&mut plane, &netlist);
        assert_eq!(report.hard_overlay_violations, 0);
        assert_eq!(report.cut_conflicts, 0);
        // Exclusive cell ownership + pin connectivity.
        let mut seen = std::collections::HashMap::new();
        for (id, routed) in router.routed() {
            let net = netlist.net(*id);
            assert!(net.source.candidates().contains(&routed.path.source()));
            assert!(net.target.candidates().contains(&routed.path.target()));
            for p in routed.all_points() {
                if let Some(prev) = seen.insert(p, *id) {
                    assert_eq!(prev, *id, "cell {p} double-owned");
                }
            }
        }
        // Final coloring satisfies every hard constraint.
        for g in router.graphs() {
            assert_eq!(g.evaluate().hard_violations, 0);
        }
    }
}
